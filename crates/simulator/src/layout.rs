//! 2-D placement of the weathermap.
//!
//! The extraction algorithms recover topology purely from geometry, so the
//! layout engine must uphold three invariants that make Algorithm 2's
//! greedy attribution provably correct:
//!
//! 1. **Disjoint boxes** — node boxes never overlap, and every link end
//!    lies exactly on its own node's box boundary, so the nearest box to
//!    an end (by box-distance) is always the true endpoint.
//! 2. **Port separation** — every physical link gets its own *port*: a
//!    dedicated stretch of its node's box perimeter, [`LANE_STEP`] wide,
//!    with extra clearance between different link groups. Link ends are
//!    therefore pairwise farther apart than a link end is from its own
//!    label, so the closest label to any end is always its own.
//! 3. **Labels hug their ends** — `#n` labels sit a fixed short distance
//!    from the link end they describe, which is also the threshold the
//!    extraction sanity check enforces.
//!
//! Nodes are placed on a site-grouped grid: routers cluster by site like
//! the real map's geographic clusters, peerings fill the trailing cells.

use wm_geometry::{Point, Rect, Segment, Vec2};

use crate::state::{NetworkState, NodeIdx};

/// Distance between adjacent parallel lanes, in SVG units.
pub const LANE_STEP: f64 = 18.0;
/// Distance from a link end to the centre of its `#n` label box.
pub const LABEL_DISTANCE: f64 = 8.0;
/// Link-label box size (fits `#16`, kept small so a label box can only
/// ever intersect its own lane's carrier line — see invariant 2 above).
pub const LABEL_BOX: (f64, f64) = (14.0, 7.0);
/// Free space around node boxes within a grid cell.
const CELL_PADDING: (f64, f64) = (150.0, 90.0);
/// Canvas margin.
const MARGIN: f64 = 60.0;

/// Geometry of one node box.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLayout {
    /// Index into [`NetworkState::nodes`].
    pub idx: NodeIdx,
    /// The white box.
    pub rect: Rect,
    /// Anchor of the name text (baseline start, inside the box).
    pub name_anchor: Point,
}

/// Geometry of one parallel lane (one physical link).
#[derive(Debug, Clone, PartialEq)]
pub struct LaneLayout {
    /// Index into [`NetworkState::groups`].
    pub group: usize,
    /// Index into the group's link vector.
    pub slot: usize,
    /// Link end on node `a`'s box boundary.
    pub end_a: Point,
    /// Link end on node `b`'s box boundary.
    pub end_b: Point,
    /// Distance from `end_a` to the centre of its `#n` label
    /// (starts at [`LABEL_DISTANCE`], may be reduced by the fix-up pass).
    pub label_d_a: f64,
    /// Distance from `end_b` to the centre of its `#n` label.
    pub label_d_b: f64,
}

impl LaneLayout {
    /// The lane as a segment from `a` to `b`.
    #[must_use]
    pub fn segment(&self) -> Segment {
        Segment::new(self.end_a, self.end_b)
    }
}

/// The complete placed map.
#[derive(Debug, Clone, PartialEq)]
pub struct MapLayout {
    /// Canvas width.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
    /// Placed nodes (present nodes only), in state order.
    pub nodes: Vec<NodeLayout>,
    /// Placed lanes, in `(group, slot)` order.
    pub lanes: Vec<LaneLayout>,
}

impl MapLayout {
    /// The layout of a node by state index.
    #[must_use]
    pub fn node(&self, idx: NodeIdx) -> Option<&NodeLayout> {
        self.nodes.iter().find(|n| n.idx == idx)
    }
}

/// Clearance between the port intervals of different link groups on one
/// box perimeter.
const GROUP_GAP: f64 = 14.0;

/// Places a network state on the canvas.
#[must_use]
pub fn layout(state: &NetworkState) -> MapLayout {
    // --- Box sizing --------------------------------------------------------
    // Each node's box perimeter must fit one port (LANE_STEP wide) per
    // physical link, plus inter-group clearance.
    let mut required_perimeter: Vec<f64> = vec![0.0; state.nodes.len()];
    for group in &state.groups {
        let width = group.links.len() as f64 * LANE_STEP + GROUP_GAP;
        required_perimeter[group.a] += width;
        required_perimeter[group.b] += width;
    }
    let box_size = |idx: NodeIdx| -> (f64, f64) {
        let name_len = state.nodes[idx].name.len() as f64;
        let mut width = name_len * 7.5 + 14.0;
        let mut height = 26.0;
        let deficit = required_perimeter[idx] / 2.0 - (width + height);
        if deficit > 0.0 {
            width += deficit / 2.0;
            height += deficit / 2.0;
        }
        (width, height)
    };

    // --- Grid placement ------------------------------------------------------
    // Present routers grouped by site, then peerings.
    let mut order: Vec<NodeIdx> = Vec::new();
    let mut sites: Vec<&str> = Vec::new();
    for node in state.nodes.iter().filter(|n| n.present) {
        if !sites.contains(&node.site.as_str()) {
            sites.push(&node.site);
        }
    }
    for site in &sites {
        for (idx, node) in state.nodes.iter().enumerate() {
            if node.present && node.site == *site && node.kind == wm_model::NodeKind::Router {
                order.push(idx);
            }
        }
    }
    for (idx, node) in state.nodes.iter().enumerate() {
        if node.present && node.kind == wm_model::NodeKind::Peering {
            order.push(idx);
        }
    }

    let n = order.len().max(1);
    let cols = ((n as f64).sqrt() * 1.3).ceil() as usize;
    let cols = cols.max(1);
    let max_dims = order
        .iter()
        .map(|&i| box_size(i))
        .fold((0.0f64, 0.0f64), |(mw, mh), (w, h)| (mw.max(w), mh.max(h)));
    let cell_w = max_dims.0 + CELL_PADDING.0;
    let cell_h = max_dims.1 + CELL_PADDING.1;

    let mut nodes: Vec<NodeLayout> = Vec::with_capacity(order.len());
    for (slot, &idx) in order.iter().enumerate() {
        let col = slot % cols;
        let row = slot / cols;
        let center = Point::new(
            MARGIN + col as f64 * cell_w + cell_w / 2.0,
            MARGIN + row as f64 * cell_h + cell_h / 2.0,
        );
        let (w, h) = box_size(idx);
        let rect = Rect::new(center.x - w / 2.0, center.y - h / 2.0, w, h);
        nodes.push(NodeLayout {
            idx,
            rect,
            name_anchor: Point::new(rect.x + 6.0, rect.y + rect.height / 2.0 + 3.5),
        });
    }
    // Keep node layouts addressable by state index.
    let rect_of = |idx: NodeIdx| -> Rect {
        nodes
            .iter()
            .find(|nl| nl.idx == idx)
            .map(|nl| nl.rect)
            .expect("placed node")
    };

    // --- Port allocation ------------------------------------------------------
    // For every node, each attached group claims a contiguous stretch of
    // the box perimeter near the direction of its far endpoint; each lane
    // of the group gets its own LANE_STEP-wide port within that stretch.
    let mut ports: Vec<Vec<(usize, Vec<Point>)>> = vec![Vec::new(); state.nodes.len()];
    {
        // Gather requests per node: (group index, lane count, ideal coord).
        let mut requests: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); state.nodes.len()];
        for (gi, group) in state.groups.iter().enumerate() {
            let rect_a = rect_of(group.a);
            let rect_b = rect_of(group.b);
            let k = group.links.len();
            requests[group.a].push((gi, k, perimeter_coord_towards(&rect_a, rect_b.center())));
            requests[group.b].push((gi, k, perimeter_coord_towards(&rect_b, rect_a.center())));
        }
        for (idx, mut reqs) in requests.into_iter().enumerate() {
            if reqs.is_empty() {
                continue;
            }
            let rect = rect_of(idx);
            let perimeter = 2.0 * (rect.width + rect.height);
            reqs.sort_by(|a, b| a.2.total_cmp(&b.2));
            let widths: Vec<f64> = reqs
                .iter()
                .map(|(_, k, _)| *k as f64 * LANE_STEP + GROUP_GAP)
                .collect();
            let total: f64 = widths.iter().sum();
            // Greedy placement near the ideal coordinates…
            let mut starts: Vec<f64> = Vec::with_capacity(reqs.len());
            let mut cursor = f64::NEG_INFINITY;
            for (i, (_, _, ideal)) in reqs.iter().enumerate() {
                let start = (ideal - widths[i] / 2.0).max(cursor);
                starts.push(start);
                cursor = start + widths[i];
            }
            let span = cursor - starts[0];
            if span > perimeter - 1e-6 {
                // …or uniform packing around the ring when they crowd.
                let slack = (perimeter - total).max(0.0) / reqs.len() as f64;
                let mut s = reqs[0].2 - widths[0] / 2.0;
                starts.clear();
                for width in &widths {
                    starts.push(s);
                    s += width + slack;
                }
            }
            for (i, (gi, k, _)) in reqs.iter().enumerate() {
                let points: Vec<Point> = (0..*k)
                    .map(|j| {
                        let p = starts[i] + GROUP_GAP / 2.0 + (j as f64 + 0.5) * LANE_STEP;
                        perimeter_point(&rect, p)
                    })
                    .collect();
                ports[idx].push((*gi, points));
            }
        }
    }
    let ports_of = |idx: NodeIdx, gi: usize| -> &[Point] {
        ports[idx]
            .iter()
            .find(|(g, _)| *g == gi)
            .map(|(_, pts)| pts.as_slice())
            .expect("port allocated")
    };

    // --- Lanes ---------------------------------------------------------------
    let mut lanes: Vec<LaneLayout> = Vec::new();
    for (gi, group) in state.groups.iter().enumerate() {
        let ports_a = ports_of(group.a, gi);
        let ports_b = ports_of(group.b, gi);
        let k = group.links.len();
        // Pair ports in the orientation that keeps lanes near-parallel
        // (straight pairing vs reversed, whichever is shorter overall).
        let straight: f64 = (0..k)
            .map(|j| ports_a[j].distance_squared(ports_b[j]))
            .sum();
        let reversed: f64 = (0..k)
            .map(|j| ports_a[j].distance_squared(ports_b[k - 1 - j]))
            .sum();
        for (li, _slot) in group.links.iter().enumerate() {
            let end_a = ports_a[li];
            let end_b = if straight <= reversed {
                ports_b[li]
            } else {
                ports_b[k - 1 - li]
            };
            lanes.push(LaneLayout {
                group: gi,
                slot: li,
                end_a,
                end_b,
                label_d_a: LABEL_DISTANCE,
                label_d_b: LABEL_DISTANCE,
            });
        }
    }

    fix_label_conflicts(state, &mut lanes);

    let rows = order.len().div_ceil(cols);
    MapLayout {
        width: MARGIN * 2.0 + cols as f64 * cell_w,
        height: MARGIN * 2.0 + rows.max(1) as f64 * cell_h,
        nodes,
        lanes,
    }
}

/// The axis-aligned label box centred `distance` along the lane from the
/// given end.
fn label_rect(end: Point, other_end: Point, distance: f64) -> Rect {
    let dir = (other_end - end)
        .normalized()
        .unwrap_or(Vec2::new(1.0, 0.0));
    let c = end + dir * distance;
    Rect::new(
        c.x - LABEL_BOX.0 / 2.0,
        c.y - LABEL_BOX.1 / 2.0,
        LABEL_BOX.0,
        LABEL_BOX.1,
    )
}

/// Verifies, per node box, that every link end's nearest label is its own;
/// conflicts (possible when a port fan spans a box corner) are resolved by
/// pulling the involved labels closer to their own ends.
fn fix_label_conflicts(state: &NetworkState, lanes: &mut [LaneLayout]) {
    // Ends grouped by the node they sit on: (lane index, which end).
    let mut ends_by_node: std::collections::BTreeMap<usize, Vec<(usize, bool)>> =
        std::collections::BTreeMap::new();
    for (i, lane) in lanes.iter().enumerate() {
        let group = &state.groups[lane.group];
        ends_by_node.entry(group.a).or_default().push((i, true));
        ends_by_node.entry(group.b).or_default().push((i, false));
    }
    for ends in ends_by_node.values() {
        for _round in 0..8 {
            let mut conflicts = 0;
            for &(i, a_side) in ends {
                let end = if a_side {
                    lanes[i].end_a
                } else {
                    lanes[i].end_b
                };
                // Nearest label among all ends on this node.
                let mut best: Option<((usize, bool), f64)> = None;
                for &(j, ja) in ends {
                    let lane = &lanes[j];
                    let rect = if ja {
                        label_rect(lane.end_a, lane.end_b, lane.label_d_a)
                    } else {
                        label_rect(lane.end_b, lane.end_a, lane.label_d_b)
                    };
                    let d = rect.distance_to_point(end);
                    if best.is_none() || d < best.expect("set").1 {
                        best = Some(((j, ja), d));
                    }
                }
                let ((j, ja), _) = best.expect("at least the own label exists");
                if (j, ja) != (i, a_side) {
                    conflicts += 1;
                    // Pull both labels towards their own ends.
                    for &(k, ka) in &[(i, a_side), (j, ja)] {
                        let d = if ka {
                            &mut lanes[k].label_d_a
                        } else {
                            &mut lanes[k].label_d_b
                        };
                        *d = (*d - 1.5).max(4.0);
                    }
                }
            }
            if conflicts == 0 {
                break;
            }
        }
    }
}

/// The point at perimeter coordinate `p` on the rect boundary.
///
/// Coordinates run clockwise from the top-left corner: top edge, right
/// edge, bottom edge (right to left), left edge (bottom to top); `p` is
/// taken modulo the perimeter length.
fn perimeter_point(rect: &Rect, p: f64) -> Point {
    let perimeter = 2.0 * (rect.width + rect.height);
    let mut p = p.rem_euclid(perimeter);
    if p < rect.width {
        return Point::new(rect.x + p, rect.y);
    }
    p -= rect.width;
    if p < rect.height {
        return Point::new(rect.right(), rect.y + p);
    }
    p -= rect.height;
    if p < rect.width {
        return Point::new(rect.right() - p, rect.bottom());
    }
    p -= rect.width;
    Point::new(rect.x, rect.bottom() - p)
}

/// The perimeter coordinate of the boundary point where the ray from the
/// rect centre towards `target` exits the box.
fn perimeter_coord_towards(rect: &Rect, target: Point) -> f64 {
    let center = rect.center();
    let d = target - center;
    let (hw, hh) = (rect.width / 2.0, rect.height / 2.0);
    // Scale the direction so the exit lands on the boundary.
    let scale = {
        let sx = if d.x.abs() > f64::EPSILON {
            hw / d.x.abs()
        } else {
            f64::INFINITY
        };
        let sy = if d.y.abs() > f64::EPSILON {
            hh / d.y.abs()
        } else {
            f64::INFINITY
        };
        let s = sx.min(sy);
        if s.is_finite() {
            s
        } else {
            return 0.0; // Target at the centre: arbitrary but deterministic.
        }
    };
    let q = center + d * scale;
    // Convert the boundary point to a perimeter coordinate.
    let eps = 1e-9;
    if (q.y - rect.y).abs() < eps {
        return (q.x - rect.x).clamp(0.0, rect.width);
    }
    if (q.x - rect.right()).abs() < eps {
        return rect.width + (q.y - rect.y).clamp(0.0, rect.height);
    }
    if (q.y - rect.bottom()).abs() < eps {
        return rect.width + rect.height + (rect.right() - q.x).clamp(0.0, rect.width);
    }
    rect.width + rect.height + rect.width + (rect.bottom() - q.y).clamp(0.0, rect.height)
}

/// Positions of the two `#n` label-box centres of a lane: near end `a` and
/// near end `b`, at the lane's (possibly fix-up-adjusted) distances.
#[must_use]
pub fn label_centers(lane: &LaneLayout) -> (Point, Point) {
    let seg = lane.segment();
    let dir = seg.direction().normalized().unwrap_or(Vec2::new(1.0, 0.0));
    (
        lane.end_a + dir * lane.label_d_a,
        lane.end_b - dir * lane.label_d_b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::targets;
    use crate::genesis;
    use wm_model::MapKind;

    fn small_state() -> NetworkState {
        genesis::build(MapKind::Europe, &targets(MapKind::Europe, 0.2), &[], 3).state
    }

    #[test]
    fn boxes_are_disjoint() {
        let state = small_state();
        let l = layout(&state);
        for (i, a) in l.nodes.iter().enumerate() {
            for b in &l.nodes[i + 1..] {
                assert!(
                    !a.rect
                        .inflated(-0.5)
                        .intersects_rect(&b.rect.inflated(-0.5)),
                    "boxes overlap: {:?} vs {:?}",
                    a.rect,
                    b.rect
                );
            }
        }
    }

    #[test]
    fn every_present_node_is_placed_within_canvas() {
        let state = small_state();
        let l = layout(&state);
        let present = state.nodes.iter().filter(|n| n.present).count();
        assert_eq!(l.nodes.len(), present);
        for node in &l.nodes {
            assert!(node.rect.x >= 0.0 && node.rect.y >= 0.0);
            assert!(node.rect.right() <= l.width && node.rect.bottom() <= l.height);
            assert!(node.rect.contains(node.name_anchor));
        }
    }

    #[test]
    fn lane_ends_lie_on_their_own_boxes() {
        let state = small_state();
        let l = layout(&state);
        for lane in &l.lanes {
            let group = &state.groups[lane.group];
            let rect_a = l.node(group.a).unwrap().rect;
            let rect_b = l.node(group.b).unwrap().rect;
            assert!(
                rect_a.distance_to_point(lane.end_a) < 1e-6,
                "end_a {} not on box {:?}",
                lane.end_a,
                rect_a
            );
            assert!(rect_b.distance_to_point(lane.end_b) < 1e-6);
            // And an end is strictly closer to its own box than to any
            // other node box — the Algorithm 2 attribution invariant.
            for other in &l.nodes {
                if other.idx != group.a {
                    assert!(other.rect.distance_to_point(lane.end_a) > 1.0);
                }
                if other.idx != group.b {
                    assert!(other.rect.distance_to_point(lane.end_b) > 1.0);
                }
            }
        }
    }

    #[test]
    fn one_lane_per_physical_link() {
        let state = small_state();
        let l = layout(&state);
        let total_links: usize = state.groups.iter().map(|g| g.links.len()).sum();
        assert_eq!(l.lanes.len(), total_links);
    }

    #[test]
    fn link_ends_on_a_box_are_pairwise_separated() {
        let state = small_state();
        let l = layout(&state);
        // Collect every link end per node and check pairwise separation —
        // the port-allocation invariant.
        let mut ends_by_node: std::collections::BTreeMap<usize, Vec<wm_geometry::Point>> =
            std::collections::BTreeMap::new();
        for lane in &l.lanes {
            let group = &state.groups[lane.group];
            ends_by_node.entry(group.a).or_default().push(lane.end_a);
            ends_by_node.entry(group.b).or_default().push(lane.end_b);
        }
        for (node, ends) in ends_by_node {
            for (i, a) in ends.iter().enumerate() {
                for b in &ends[i + 1..] {
                    // Same-edge ports are LANE_STEP apart; corner-adjacent
                    // ports at least LANE_STEP/√2.
                    assert!(
                        a.distance(*b) > LANE_STEP / 2.0_f64.sqrt() - 0.5,
                        "ends {a} and {b} on node {node} are too close"
                    );
                }
            }
        }
    }

    #[test]
    fn every_link_end_is_closest_to_its_own_label() {
        // The invariant that makes Algorithm 2's greedy label attribution
        // exact: for every link end, the nearest label box on the whole
        // map is the end's own label.
        let state = small_state();
        let l = layout(&state);
        let mut labels: Vec<(usize, Rect)> = Vec::new(); // (lane index, box)
        for (i, lane) in l.lanes.iter().enumerate() {
            let (ca, cb) = label_centers(lane);
            for c in [ca, cb] {
                labels.push((
                    i,
                    Rect::new(
                        c.x - LABEL_BOX.0 / 2.0,
                        c.y - LABEL_BOX.1 / 2.0,
                        LABEL_BOX.0,
                        LABEL_BOX.1,
                    ),
                ));
            }
        }
        for (i, lane) in l.lanes.iter().enumerate() {
            for (which, end) in [(0usize, lane.end_a), (1, lane.end_b)] {
                let nearest = labels
                    .iter()
                    .enumerate()
                    .min_by(|(_, (_, ra)), (_, (_, rb))| {
                        ra.distance_to_point(end)
                            .total_cmp(&rb.distance_to_point(end))
                    })
                    .map(|(label_idx, (lane_idx, _))| (label_idx, *lane_idx))
                    .expect("labels exist");
                assert_eq!(
                    nearest.1, i,
                    "end {which} of lane {i} is closer to a foreign label"
                );
                assert_eq!(nearest.0, i * 2 + which, "wrong end's label");
            }
        }
    }

    #[test]
    fn labels_hug_their_ends() {
        let state = small_state();
        let l = layout(&state);
        for lane in &l.lanes {
            let (la, lb) = label_centers(lane);
            assert!((la.distance(lane.end_a) - lane.label_d_a).abs() < 1e-6);
            assert!((lb.distance(lane.end_b) - lane.label_d_b).abs() < 1e-6);
            assert!(lane.label_d_a <= LABEL_DISTANCE && lane.label_d_a >= 4.0);
            // The label box intersects its own carrier line.
            let own_box = Rect::new(
                la.x - LABEL_BOX.0 / 2.0,
                la.y - LABEL_BOX.1 / 2.0,
                LABEL_BOX.0,
                LABEL_BOX.1,
            );
            assert!(own_box.intersects_line(&lane.segment().carrier_line()));
        }
    }

    #[test]
    fn perimeter_point_round_trips() {
        let rect = Rect::new(10.0, 20.0, 100.0, 40.0);
        // Walk the whole perimeter; every point must lie on the boundary.
        let perimeter = 2.0 * (rect.width + rect.height);
        let mut p = 0.0;
        while p < perimeter {
            let q = perimeter_point(&rect, p);
            assert!(
                rect.distance_to_point(q) < 1e-9,
                "{q} off boundary at p={p}"
            );
            p += 7.3;
        }
        // Wrapping works.
        let a = perimeter_point(&rect, 5.0);
        let b = perimeter_point(&rect, 5.0 + perimeter);
        assert!(a.approx_eq(b));
    }

    #[test]
    fn perimeter_coord_towards_faces_the_target() {
        let rect = Rect::new(0.0, 0.0, 100.0, 40.0);
        // A target to the right should exit on the right edge.
        let p = perimeter_coord_towards(&rect, wm_geometry::Point::new(500.0, 20.0));
        let q = perimeter_point(&rect, p);
        assert!(
            (q.x - rect.right()).abs() < 1e-6,
            "exit {q} not on right edge"
        );
        // A target above exits on the top edge.
        let p = perimeter_coord_towards(&rect, wm_geometry::Point::new(50.0, -300.0));
        let q = perimeter_point(&rect, p);
        assert!((q.y - rect.y).abs() < 1e-6, "exit {q} not on top edge");
    }

    #[test]
    fn layout_is_deterministic() {
        let state = small_state();
        assert_eq!(layout(&state), layout(&state));
    }
}
