//! Deterministic noise utilities.
//!
//! The simulator must be able to materialise *any* snapshot of *any* map
//! at *any* instant without replaying the ones before it — experiment
//! binaries sample two years at coarse strides, tests jump around freely.
//! Ordinary sequential RNG streams cannot do that, so the traffic model is
//! built on *hash noise*: every random quantity is a pure function of
//! `(seed, labels…, time)` through a SplitMix64-style mixer. The same seed
//! therefore reproduces byte-identical corpora regardless of query order.

/// SplitMix64 finaliser: a fast, well-distributed 64-bit mixer.
#[inline]
#[must_use]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a sequence of labels into one key.
#[must_use]
pub fn hash_labels(seed: u64, labels: &[u64]) -> u64 {
    let mut h = mix(seed);
    for &label in labels {
        h = mix(h ^ label);
    }
    h
}

/// Uniform float in `[0, 1)` from a hash key.
#[inline]
#[must_use]
pub fn unit_f64(key: u64) -> f64 {
    // Use the top 53 bits for a full-precision mantissa.
    (key >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform float in `[0, 1)` from seed and labels.
#[must_use]
pub fn uniform(seed: u64, labels: &[u64]) -> f64 {
    unit_f64(hash_labels(seed, labels))
}

/// Standard-normal-ish variate from seed and labels.
///
/// Uses the sum of four uniforms (Irwin–Hall), rescaled to unit variance.
/// The tails are shorter than a true Gaussian, which is *desirable* here:
/// link-load percentages live in a bounded range and wild outliers would
/// leak through the clamps as artefacts.
#[must_use]
pub fn normalish(seed: u64, labels: &[u64]) -> f64 {
    let base = hash_labels(seed, labels);
    let sum: f64 = (0..4).map(|i| unit_f64(mix(base ^ i))).sum();
    // Irwin-Hall n=4: mean 2, variance 4/12 = 1/3.
    (sum - 2.0) / (1.0 / 3.0f64).sqrt()
}

/// Smooth temporal value noise in `[-1, 1]`.
///
/// Random anchor values are placed every `period_secs` and joined with a
/// cosine ease, producing a continuous signal whose autocorrelation decays
/// over roughly one period — the stand-in for the AR(1) burstiness of real
/// traffic, but randomly accessible.
#[must_use]
pub fn value_noise(seed: u64, labels: &[u64], unix: i64, period_secs: i64) -> f64 {
    debug_assert!(period_secs > 0);
    let cell = unix.div_euclid(period_secs);
    let frac = unix.rem_euclid(period_secs) as f64 / period_secs as f64;
    let anchor = |c: i64| {
        let key = hash_labels(seed, labels) ^ (c as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        unit_f64(mix(key)) * 2.0 - 1.0
    };
    let a = anchor(cell);
    let b = anchor(cell + 1);
    // Cosine ease between anchors.
    let t = (1.0 - (std::f64::consts::PI * frac).cos()) / 2.0;
    a * (1.0 - t) + b * t
}

/// Picks an index in `[0, n)` from seed and labels.
#[must_use]
pub fn pick(seed: u64, labels: &[u64], n: usize) -> usize {
    debug_assert!(n > 0);
    (hash_labels(seed, labels) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(42), mix(43));
        // A change in any input bit should flip roughly half the output.
        let a = mix(0);
        let b = mix(1);
        let differing = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "poor avalanche: {differing} bits"
        );
    }

    #[test]
    fn uniform_is_in_range_and_label_sensitive() {
        for i in 0..1000u64 {
            let u = uniform(7, &[i]);
            assert!((0.0..1.0).contains(&u));
        }
        assert_ne!(
            uniform(7, &[1, 2]),
            uniform(7, &[2, 1]),
            "label order must matter"
        );
        assert_ne!(uniform(7, &[1]), uniform(8, &[1]), "seed must matter");
    }

    #[test]
    fn uniform_mean_is_centred() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| uniform(11, &[i])).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normalish_moments() {
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|i| normalish(3, &[i])).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
        // Bounded tails (Irwin-Hall n=4 lies within ±2/sqrt(1/3) ≈ ±3.46).
        assert!(samples.iter().all(|x| x.abs() < 3.5));
    }

    #[test]
    fn value_noise_is_smooth_and_bounded() {
        let period = 3_600;
        let mut prev = value_noise(5, &[9], 0, period);
        for step in 1..500 {
            let t = step * 60;
            let v = value_noise(5, &[9], t, period);
            assert!((-1.0..=1.0).contains(&v));
            assert!(
                (v - prev).abs() < 0.25,
                "jump of {} at step {step}",
                (v - prev).abs()
            );
            prev = v;
        }
    }

    #[test]
    fn value_noise_is_random_access() {
        let at = |t| value_noise(5, &[1, 2], t, 300);
        let forward: Vec<f64> = (0..100).map(|i| at(i * 300)).collect();
        let backward: Vec<f64> = (0..100).rev().map(|i| at(i * 300)).collect();
        let backward: Vec<f64> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
    }

    #[test]
    fn value_noise_decorrelates_across_labels() {
        let a = value_noise(5, &[1], 1_000, 300);
        let b = value_noise(5, &[2], 1_000, 300);
        assert_ne!(a, b);
    }

    #[test]
    fn pick_is_in_range() {
        for i in 0..100u64 {
            assert!(pick(1, &[i], 7) < 7);
        }
    }
}
