//! The top-level simulation facade.

use wm_model::{MapKind, Timestamp, TopologySnapshot};

use crate::collector::CollectionPlan;
use crate::config::SimulationConfig;
use crate::evolution::{Timeline, TimelineCursor, UpgradeScenario};
use crate::faults::{corrupt, fault_for, FaultKind};
use crate::layout::{layout, MapLayout};
use crate::render::{render, RenderedSnapshot};
use crate::traffic::TrafficModel;

/// One file of the simulated corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusFile {
    /// The map the snapshot belongs to.
    pub map: MapKind,
    /// The snapshot instant.
    pub timestamp: Timestamp,
    /// The SVG bytes as collected (possibly corrupted).
    pub svg: String,
    /// The corruption applied, if any.
    pub fault: Option<FaultKind>,
    /// The ground truth of the *uncorrupted* snapshot.
    pub truth: TopologySnapshot,
}

/// A complete simulated weathermap world: four maps, their evolution,
/// traffic, collection gaps and file corruption — all deterministic
/// functions of one [`SimulationConfig`].
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
    timelines: [Timeline; 4],
    plans: [CollectionPlan; 4],
    traffic: TrafficModel,
}

impl Simulation {
    /// Builds the world. The World map's gateway routers are borrowed from
    /// the continental maps' cores, so router names overlap across maps
    /// exactly as the paper's Table 1 dedup note describes.
    #[must_use]
    pub fn new(config: SimulationConfig) -> Simulation {
        let europe = Timeline::build(MapKind::Europe, &config, &[]);
        let na = Timeline::build(MapKind::NorthAmerica, &config, &[]);
        let apac = Timeline::build(MapKind::AsiaPacific, &config, &[]);

        let mut gateways: Vec<(String, String)> = Vec::new();
        let mut add_gateways = |timeline: &Timeline, count: usize| {
            for name in timeline.genesis.core_routers.iter().take(count) {
                let state = &timeline.genesis.state;
                let idx = state.node_idx(name).expect("core exists");
                gateways.push((name.clone(), state.nodes[idx].site.clone()));
            }
        };
        add_gateways(&europe, 8);
        add_gateways(&na, 7);
        add_gateways(&apac, 5);
        let world = Timeline::build(MapKind::World, &config, &gateways);

        let plans = [
            CollectionPlan::new(MapKind::Europe, &config),
            CollectionPlan::new(MapKind::World, &config),
            CollectionPlan::new(MapKind::NorthAmerica, &config),
            CollectionPlan::new(MapKind::AsiaPacific, &config),
        ];
        let traffic = TrafficModel::new(config.seed);
        Simulation {
            config,
            timelines: [europe, world, na, apac],
            plans,
            traffic,
        }
    }

    fn map_slot(map: MapKind) -> usize {
        match map {
            MapKind::Europe => 0,
            MapKind::World => 1,
            MapKind::NorthAmerica => 2,
            MapKind::AsiaPacific => 3,
        }
    }

    /// The configuration this world was built from.
    #[must_use]
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The evolution timeline of a map.
    #[must_use]
    pub fn timeline(&self, map: MapKind) -> &Timeline {
        &self.timelines[Self::map_slot(map)]
    }

    /// The collection plan of a map.
    #[must_use]
    pub fn collection_plan(&self, map: MapKind) -> &CollectionPlan {
        &self.plans[Self::map_slot(map)]
    }

    /// The traffic model.
    #[must_use]
    pub fn traffic(&self) -> &TrafficModel {
        &self.traffic
    }

    /// The Fig. 6 upgrade scenario, when the scale admits it.
    #[must_use]
    pub fn scenario(&self) -> Option<&UpgradeScenario> {
        self.timelines[Self::map_slot(MapKind::Europe)]
            .scenario
            .as_ref()
    }

    /// Renders the clean (never corrupted) snapshot of `map` at `t`.
    ///
    /// Random access costs one event replay plus one layout; sequential
    /// consumers should use [`Simulation::corpus_between`].
    #[must_use]
    pub fn snapshot(&self, map: MapKind, t: Timestamp) -> RenderedSnapshot {
        let state = self.timeline(map).state_at(t);
        let l = layout(&state);
        render(&state, &l, &self.traffic, t)
    }

    /// The corpus file of `map` at grid instant `t`, or `None` when the
    /// collector missed that snapshot.
    #[must_use]
    pub fn collected_snapshot(&self, map: MapKind, t: Timestamp) -> Option<CorpusFile> {
        if !self.collection_plan(map).collected(t) {
            return None;
        }
        let rendered = self.snapshot(map, t);
        Some(self.package(map, t, rendered))
    }

    fn package(&self, map: MapKind, t: Timestamp, rendered: RenderedSnapshot) -> CorpusFile {
        let fault = fault_for(self.config.seed, map, t);
        let svg = match fault {
            Some(kind) => corrupt(&rendered.svg, kind, self.config.seed),
            None => rendered.svg,
        };
        CorpusFile {
            map,
            timestamp: t,
            svg,
            fault,
            truth: rendered.truth,
        }
    }

    /// Sequentially generates every collected corpus file of `map` within
    /// `[from, to)`, amortising evolution replay and layout across
    /// snapshots.
    #[must_use]
    pub fn corpus_between(&self, map: MapKind, from: Timestamp, to: Timestamp) -> CorpusIter<'_> {
        CorpusIter {
            sim: self,
            map,
            times: self
                .collection_plan(map)
                .collected_times_between(from, to)
                .collect::<Vec<_>>()
                .into_iter(),
            cursor: self.timeline(map).cursor(),
            cached_layout: None,
        }
    }
}

/// Sequential corpus generator returned by [`Simulation::corpus_between`].
pub struct CorpusIter<'s> {
    sim: &'s Simulation,
    map: MapKind,
    times: std::vec::IntoIter<Timestamp>,
    cursor: TimelineCursor<'s>,
    /// Layout cache, invalidated when the state fingerprint changes.
    cached_layout: Option<(u64, MapLayout)>,
}

impl Iterator for CorpusIter<'_> {
    type Item = CorpusFile;

    fn next(&mut self) -> Option<CorpusFile> {
        let t = self.times.next()?;
        let state = self.cursor.advance_to(t).clone();
        let fingerprint = state_fingerprint(&state);
        let needs_layout = match &self.cached_layout {
            Some((cached, _)) => *cached != fingerprint,
            None => true,
        };
        if needs_layout {
            self.cached_layout = Some((fingerprint, layout(&state)));
        }
        let (_, l) = self.cached_layout.as_ref().expect("just ensured");
        let rendered = render(&state, l, &self.sim.traffic, t);
        Some(self.sim.package(self.map, t, rendered))
    }
}

/// Cheap structural fingerprint of a state: changes whenever nodes or
/// links change (loads don't matter — layout is topology-only).
fn state_fingerprint(state: &crate::state::NetworkState) -> u64 {
    use crate::rng::mix;
    let mut h = 0xFEED_FACE_u64;
    for node in state.nodes.iter().filter(|n| n.present) {
        h = mix(h ^ node.name.len() as u64 ^ (node.name.as_bytes()[0] as u64) << 8);
    }
    for group in &state.groups {
        h = mix(h ^ group.id ^ (group.links.len() as u64) << 32);
        for link in &group.links {
            h = mix(h ^ link.id ^ u64::from(link.active) << 63);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_model::Duration;

    fn small_sim() -> Simulation {
        Simulation::new(SimulationConfig::scaled(11, 0.12))
    }

    #[test]
    fn snapshot_produces_svg_and_truth() {
        let sim = small_sim();
        let snap = sim.snapshot(MapKind::Europe, Timestamp::from_ymd(2021, 5, 5));
        assert!(snap.svg.starts_with("<?xml"));
        assert!(snap.truth.router_count() > 0);
        assert!(!snap.truth.links.is_empty());
    }

    #[test]
    fn world_routers_overlap_with_continental_maps() {
        let sim = small_sim();
        let t = Timestamp::from_ymd(2022, 9, 12);
        let world: Vec<String> = sim
            .timeline(MapKind::World)
            .state_at(t)
            .routers()
            .map(|r| r.name.clone())
            .collect();
        let mut continental: Vec<String> = Vec::new();
        for map in [MapKind::Europe, MapKind::NorthAmerica, MapKind::AsiaPacific] {
            continental.extend(
                sim.timeline(map)
                    .state_at(t)
                    .routers()
                    .map(|r| r.name.clone()),
            );
        }
        let overlapping = world.iter().filter(|w| continental.contains(w)).count();
        assert_eq!(
            overlapping,
            world.len(),
            "every World router exists elsewhere"
        );
    }

    #[test]
    fn corpus_iteration_matches_random_access() {
        let sim = small_sim();
        let from = Timestamp::from_ymd(2021, 2, 1);
        let to = from + Duration::from_hours(3);
        let sequential: Vec<CorpusFile> = sim.corpus_between(MapKind::Europe, from, to).collect();
        assert!(!sequential.is_empty());
        for file in &sequential {
            let direct = sim
                .collected_snapshot(MapKind::Europe, file.timestamp)
                .expect("collected both ways");
            assert_eq!(direct.svg, file.svg, "divergence at {}", file.timestamp);
            assert_eq!(direct.truth, file.truth);
        }
    }

    #[test]
    fn corpus_respects_collection_gaps() {
        let sim = small_sim();
        // The non-Europe hole: no files in March 2021.
        let files: Vec<CorpusFile> = sim
            .corpus_between(
                MapKind::NorthAmerica,
                Timestamp::from_ymd(2021, 3, 1),
                Timestamp::from_ymd(2021, 3, 7),
            )
            .collect();
        assert!(files.is_empty());
    }

    #[test]
    fn corpus_contains_faulted_files_at_scale() {
        let sim = small_sim();
        // Find an instant the fault process corrupts (cheap hash scan),
        // then verify the corpus actually delivers the corrupted file.
        let mut t = Timestamp::from_ymd(2021, 1, 1);
        let end = Timestamp::from_ymd(2022, 9, 1);
        let faulted_at = loop {
            assert!(t < end, "no fault scheduled in 20 months — rate too low");
            if crate::faults::fault_for(sim.config().seed, MapKind::Europe, t).is_some()
                && sim.collection_plan(MapKind::Europe).collected(t)
            {
                break t;
            }
            t += Duration::from_minutes(5);
        };
        let file = sim
            .collected_snapshot(MapKind::Europe, faulted_at)
            .expect("collected");
        assert!(file.fault.is_some());
        assert_ne!(file.svg, sim.snapshot(MapKind::Europe, faulted_at).svg);
    }

    #[test]
    fn simulation_is_reproducible() {
        let a = small_sim();
        let b = small_sim();
        let t = Timestamp::from_ymd(2021, 8, 15);
        assert_eq!(
            a.snapshot(MapKind::Europe, t).svg,
            b.snapshot(MapKind::Europe, t).svg
        );
    }

    #[test]
    fn different_seeds_produce_different_worlds() {
        let a = Simulation::new(SimulationConfig::scaled(1, 0.12));
        let b = Simulation::new(SimulationConfig::scaled(2, 0.12));
        let t = Timestamp::from_ymd(2021, 8, 15);
        assert_ne!(
            a.snapshot(MapKind::Europe, t).svg,
            b.snapshot(MapKind::Europe, t).svg
        );
    }

    #[test]
    fn scenario_exists_at_paper_scale_only_for_europe() {
        let sim = Simulation::new(SimulationConfig::scaled(3, 0.5));
        let sc = sim.scenario().expect("scenario at half scale");
        assert_eq!(sc.peering, "AMS-IX");
        assert!(sim.timeline(MapKind::NorthAmerica).scenario.is_none());
    }
}
