//! Rendering a priced network state to weathermap SVG + ground truth.
//!
//! The renderer owns the *flat-SVG contract* the extraction pipeline
//! re-discovers geometrically (it never shares parsed structures with it):
//!
//! * every node is a `<rect class="object">` immediately followed by a
//!   `<text class="object">` carrying its name;
//! * every physical link is two `<polygon class="link">` arrows (the a→b
//!   arrow first) immediately followed by two
//!   `<text class="labellink">` load percentages in the same order —
//!   Algorithm 1 pairs arrows and loads purely by this document order;
//! * each link end's `#n` label is a `<rect class="node">` immediately
//!   followed by a `<text class="node">` — Algorithm 2 attributes these
//!   to link ends purely by geometry.
//!
//! Alongside the SVG the renderer emits the ground-truth
//! [`TopologySnapshot`], which integration tests compare against the
//! extraction output.

use wm_geometry::{Point, Rect, Vec2};
use wm_model::{Link, LinkEnd, Load, Node, Timestamp, TopologySnapshot};
use wm_svg::Builder;

use crate::layout::{label_centers, MapLayout, LABEL_BOX};
use crate::state::NetworkState;
use crate::traffic::TrafficModel;

/// Half-width of an arrow shaft.
const SHAFT_HALF_WIDTH: f64 = 2.0;
/// Half-width of an arrow head.
const HEAD_HALF_WIDTH: f64 = 5.0;
/// Length of an arrow head.
const HEAD_LENGTH: f64 = 8.0;
/// Gap between the two meeting arrow tips at the middle of a link.
const TIP_GAP: f64 = 2.0;
/// How far an arrow's rear edge is inset from the link end into the node
/// box. Keeps the extracted basis strictly inside the box despite the
/// writer's two-decimal coordinate rounding, so the link's carrier line
/// always passes through the box interior.
const BASIS_INSET: f64 = 2.0;

/// A rendered snapshot: the SVG bytes plus the ground truth they encode.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedSnapshot {
    /// The weathermap SVG document.
    pub svg: String,
    /// What the document truthfully shows.
    pub truth: TopologySnapshot,
}

/// Renders `state` at `t`, pricing links with `traffic`.
#[must_use]
pub fn render(
    state: &NetworkState,
    layout: &MapLayout,
    traffic: &TrafficModel,
    t: Timestamp,
) -> RenderedSnapshot {
    let mut builder = Builder::new(layout.width, layout.height);
    builder.comment(&format!(
        "wm-simulator snapshot map={} t={}",
        state.map.slug(),
        t.to_iso8601()
    ));
    let mut truth = TopologySnapshot::new(state.map, t);

    // --- Nodes -------------------------------------------------------------
    for node_layout in &layout.nodes {
        let node = &state.nodes[node_layout.idx];
        builder.rect("object", node_layout.rect);
        builder.text("object", node_layout.name_anchor, &node.name);
        truth.nodes.push(Node {
            name: node.name.as_str().into(),
            kind: node.kind,
        });
    }

    // --- Links --------------------------------------------------------------
    let priced = traffic.price_state(state, t);
    let load_of = |gi: usize, li: usize| -> (Load, Load) {
        priced
            .iter()
            .find(|(g, l, _, _)| *g == gi && *l == li)
            .map(|(_, _, ab, ba)| (*ab, *ba))
            .expect("every link is priced")
    };

    for lane in &layout.lanes {
        let group = &state.groups[lane.group];
        let slot = &group.links[lane.slot];
        let (load_ab, load_ba) = load_of(lane.group, lane.slot);

        let seg = lane.segment();
        let dir = seg.direction().normalized().unwrap_or(Vec2::new(1.0, 0.0));
        let mid = seg.midpoint();

        // Arrow a→b: basis just inside the box at end_a, tip short of the
        // middle (the inset lies along the lane, so the carrier line is
        // unchanged).
        let tip_ab = mid - dir * TIP_GAP;
        let tip_ba = mid + dir * TIP_GAP;
        builder.polygon(
            "link",
            &arrow_polygon(lane.end_a + dir * BASIS_INSET, tip_ab),
        );
        builder.polygon(
            "link",
            &arrow_polygon(lane.end_b - dir * BASIS_INSET, tip_ba),
        );
        // The two load texts, in the same order as the arrows.
        let perp = dir.perpendicular();
        builder.text(
            "labellink",
            tip_ab - dir * 14.0 + perp * 4.0,
            &format!("{load_ab}"),
        );
        builder.text(
            "labellink",
            tip_ba + dir * 14.0 + perp * 4.0,
            &format!("{load_ba}"),
        );

        // The two #n labels: a white box and its text at each end.
        let (center_a, center_b) = label_centers(lane);
        for (center, text) in [(center_a, &slot.label_a), (center_b, &slot.label_b)] {
            let rect = Rect::new(
                center.x - LABEL_BOX.0 / 2.0,
                center.y - LABEL_BOX.1 / 2.0,
                LABEL_BOX.0,
                LABEL_BOX.1,
            );
            builder.rect("node", rect);
            builder.text(
                "node",
                Point::new(rect.x + 3.0, rect.y + rect.height - 2.0),
                text,
            );
        }

        truth.links.push(Link::new(
            LinkEnd::new(node_of(state, group.a), Some(slot.label_a.clone()), load_ab),
            LinkEnd::new(node_of(state, group.b), Some(slot.label_b.clone()), load_ba),
        ));
    }

    RenderedSnapshot {
        svg: builder.finish(),
        truth,
    }
}

fn node_of(state: &NetworkState, idx: usize) -> Node {
    let n = &state.nodes[idx];
    Node {
        name: n.name.as_str().into(),
        kind: n.kind,
    }
}

/// Builds the arrow polygon from basis `from` to tip `to`.
///
/// Long arrows get the classic seven-vertex shaft+head shape; arrows
/// shorter than two head-lengths degrade to a plain triangle. In both
/// shapes the rear edge straddles `from` symmetrically, so the extracted
/// arrow basis (principal-axis rear midpoint) is exactly `from`.
#[must_use]
pub fn arrow_polygon(from: Point, to: Point) -> Vec<Point> {
    let Some(dir) = (to - from).normalized() else {
        // Degenerate; draw a tiny triangle so the document stays valid.
        return vec![
            Point::new(from.x - 1.0, from.y),
            Point::new(from.x + 1.0, from.y),
            Point::new(from.x, from.y - 1.0),
        ];
    };
    let perp = dir.perpendicular();
    let length = from.distance(to);
    if length < HEAD_LENGTH * 2.0 {
        return vec![
            from + perp * SHAFT_HALF_WIDTH,
            to,
            from - perp * SHAFT_HALF_WIDTH,
        ];
    }
    let neck = to - dir * HEAD_LENGTH;
    vec![
        from + perp * SHAFT_HALF_WIDTH,
        neck + perp * SHAFT_HALF_WIDTH,
        neck + perp * HEAD_HALF_WIDTH,
        to,
        neck - perp * HEAD_HALF_WIDTH,
        neck - perp * SHAFT_HALF_WIDTH,
        from - perp * SHAFT_HALF_WIDTH,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::targets;
    use crate::genesis;
    use crate::layout::layout;
    use wm_geometry::Polygon;
    use wm_model::MapKind;
    use wm_svg::Document;

    fn rendered() -> RenderedSnapshot {
        let state = genesis::build(MapKind::Europe, &targets(MapKind::Europe, 0.15), &[], 5).state;
        let l = layout(&state);
        let traffic = TrafficModel::new(5);
        render(
            &state,
            &l,
            &traffic,
            Timestamp::from_ymd_hms(2021, 3, 10, 12, 0, 0),
        )
    }

    #[test]
    fn svg_is_well_formed_and_flat() {
        let r = rendered();
        let doc = Document::parse(&r.svg).expect("renderer output parses");
        assert!(doc.width > 0.0 && doc.height > 0.0);
        assert!(!doc.elements.is_empty());
    }

    #[test]
    fn truth_matches_state_counts() {
        let state = genesis::build(MapKind::Europe, &targets(MapKind::Europe, 0.15), &[], 5).state;
        let l = layout(&state);
        let traffic = TrafficModel::new(5);
        let r = render(&state, &l, &traffic, Timestamp::from_ymd(2021, 3, 10));
        let (internal, external) = state.link_counts();
        assert_eq!(r.truth.links.len(), internal + external);
        assert_eq!(r.truth.internal_link_count(), internal);
        assert_eq!(r.truth.external_link_count(), external);
        assert_eq!(
            r.truth.nodes.len(),
            state.nodes.iter().filter(|n| n.present).count()
        );
    }

    #[test]
    fn element_order_contract_holds() {
        let r = rendered();
        let doc = Document::parse(&r.svg).unwrap();
        // After the object section, links come as polygon, polygon,
        // labellink, labellink; labels as rect.node, text.node pairs.
        let mut i = 0;
        let elems = &doc.elements;
        // Object section: rect/text pairs.
        while i < elems.len() && elems[i].class_starts_with("object") {
            assert_eq!(elems[i].tag, "rect");
            assert!(elems[i + 1].class_starts_with("object"));
            assert_eq!(elems[i + 1].tag, "text");
            i += 2;
        }
        assert!(i > 0, "no object section found");
        // Link sections.
        let mut links_seen = 0;
        while i < elems.len() {
            assert!(elems[i].class_is("link"), "expected link polygon at {i}");
            assert_eq!(elems[i].tag, "polygon");
            assert!(elems[i + 1].class_is("link"));
            assert!(elems[i + 2].class_is("labellink"));
            assert!(elems[i + 3].class_is("labellink"));
            assert!(elems[i + 4].class_is("node"));
            assert_eq!(elems[i + 4].tag, "rect");
            assert!(elems[i + 5].class_is("node"));
            assert_eq!(elems[i + 5].tag, "text");
            assert!(elems[i + 6].class_is("node"));
            assert!(elems[i + 7].class_is("node"));
            i += 8;
            links_seen += 1;
        }
        assert_eq!(links_seen, r.truth.links.len());
    }

    #[test]
    fn load_texts_are_percentages() {
        let r = rendered();
        let doc = Document::parse(&r.svg).unwrap();
        for e in doc.elements.iter().filter(|e| e.class_is("labellink")) {
            let text = e.as_text().expect("labellink is text");
            let load: Load = text.parse().expect("valid load text");
            assert!(load.percent() <= 100);
        }
    }

    #[test]
    fn arrow_basis_recovers_from_point() {
        for (from, to) in [
            (Point::new(0.0, 0.0), Point::new(100.0, 0.0)),
            (Point::new(10.0, 20.0), Point::new(-50.0, 90.0)),
            (Point::new(5.0, 5.0), Point::new(5.0, 200.0)),
            // Short arrow → triangle shape.
            (Point::new(0.0, 0.0), Point::new(10.0, 4.0)),
        ] {
            let poly = Polygon::new(arrow_polygon(from, to));
            let basis = poly.arrow_basis().expect("arrow has a basis");
            assert!(
                basis.distance(from) < 0.5,
                "basis {basis} should be at {from} (tip {to})"
            );
            let tip = poly.arrow_tip().expect("arrow has a tip");
            assert!(tip.distance(to) < 0.5, "tip {tip} should be at {to}");
        }
    }

    #[test]
    fn degenerate_arrow_is_still_a_polygon() {
        let poly = arrow_polygon(Point::new(3.0, 3.0), Point::new(3.0, 3.0));
        assert_eq!(poly.len(), 3);
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(rendered().svg, rendered().svg);
    }
}
