//! Simulation configuration and per-map sizing targets.

use wm_model::{MapKind, Timestamp};

/// Global configuration of a simulated weathermap world.
///
/// Everything the simulator does — topology genesis, evolution events,
/// traffic, collection gaps, file corruption — is a deterministic function
/// of this configuration. Two runs with equal configs produce
/// byte-identical corpora.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// First instant of the collection period (the paper started in July
    /// 2020).
    pub start: Timestamp,
    /// Last instant of the collection period (the paper's tables reference
    /// 2022-09-12).
    pub end: Timestamp,
    /// Linear size factor applied to router/link targets. `1.0` reproduces
    /// the paper-scale network; tests use smaller values for speed.
    pub scale: f64,
}

impl SimulationConfig {
    /// The paper-faithful configuration: July 2020 → September 2022 at
    /// full network size.
    #[must_use]
    pub fn paper(seed: u64) -> SimulationConfig {
        SimulationConfig {
            seed,
            start: Timestamp::from_ymd_hms(2020, 7, 15, 0, 0, 0),
            end: Timestamp::from_ymd_hms(2022, 9, 12, 23, 55, 0),
            scale: 1.0,
        }
    }

    /// A reduced configuration for tests: the same two-year span but a
    /// network roughly `scale` times the paper's size.
    #[must_use]
    pub fn scaled(seed: u64, scale: f64) -> SimulationConfig {
        SimulationConfig {
            scale,
            ..SimulationConfig::paper(seed)
        }
    }
}

/// Sizing targets for one map at the *reference date* (2022-09-12, the
/// date of the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapTargets {
    /// OVH routers on the map.
    pub routers: usize,
    /// Internal links (between OVH routers), parallel links counted.
    pub internal_links: usize,
    /// External links (to peerings).
    pub external_links: usize,
    /// Peering boxes on the map.
    pub peerings: usize,
}

/// The paper's Table 1 counts for a map, scaled by `scale`.
///
/// Scaling keeps at least two routers and one link so degenerate maps
/// cannot arise in tests.
#[must_use]
pub fn targets(map: MapKind, scale: f64) -> MapTargets {
    let paper = match map {
        MapKind::Europe => MapTargets {
            routers: 113,
            internal_links: 744,
            external_links: 265,
            peerings: 30,
        },
        MapKind::World => MapTargets {
            routers: 16,
            internal_links: 76,
            external_links: 0,
            peerings: 0,
        },
        MapKind::NorthAmerica => MapTargets {
            routers: 60,
            internal_links: 407,
            external_links: 214,
            peerings: 20,
        },
        MapKind::AsiaPacific => MapTargets {
            routers: 23,
            internal_links: 96,
            external_links: 39,
            peerings: 12,
        },
    };
    let s = |v: usize, min: usize| (((v as f64) * scale).round() as usize).max(min);
    MapTargets {
        routers: s(paper.routers, 2),
        internal_links: s(paper.internal_links, 1),
        external_links: if paper.external_links == 0 {
            0
        } else {
            s(paper.external_links, 1)
        },
        peerings: if paper.peerings == 0 {
            0
        } else {
            s(paper.peerings, 1)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_spans_the_collection_period() {
        let c = SimulationConfig::paper(1);
        assert_eq!(c.start.to_iso8601(), "2020-07-15T00:00:00Z");
        assert_eq!(c.end.to_iso8601(), "2022-09-12T23:55:00Z");
        assert_eq!(c.scale, 1.0);
    }

    #[test]
    fn full_scale_targets_match_table_1() {
        let t = targets(MapKind::Europe, 1.0);
        assert_eq!(
            (t.routers, t.internal_links, t.external_links),
            (113, 744, 265)
        );
        let t = targets(MapKind::World, 1.0);
        assert_eq!((t.routers, t.internal_links, t.external_links), (16, 76, 0));
        let t = targets(MapKind::NorthAmerica, 1.0);
        assert_eq!(
            (t.routers, t.internal_links, t.external_links),
            (60, 407, 214)
        );
        let t = targets(MapKind::AsiaPacific, 1.0);
        assert_eq!(
            (t.routers, t.internal_links, t.external_links),
            (23, 96, 39)
        );
    }

    #[test]
    fn scaling_shrinks_but_never_degenerates() {
        let t = targets(MapKind::Europe, 0.1);
        assert_eq!(t.routers, 11);
        assert!(t.internal_links >= 1);
        let tiny = targets(MapKind::AsiaPacific, 0.001);
        assert!(tiny.routers >= 2);
        // World keeps zero externals at any scale.
        assert_eq!(targets(MapKind::World, 0.5).external_links, 0);
    }
}
