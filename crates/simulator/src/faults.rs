//! Snapshot corruption — the unprocessable files of Table 2.
//!
//! The paper observes that a tiny fraction of collected SVGs (fewer than a
//! hundred per map out of hundreds of thousands) cannot be processed, for
//! two identified reasons: invalid SVG (e.g. malformed attribute values)
//! and SVGs lacking elements such as the OVH routers (producing links
//! whose intersections cannot be found). This module decides — by hash,
//! deterministically — which snapshots are corrupted and applies the
//! corruption to rendered SVG text.

use wm_model::{MapKind, Timestamp};

use crate::rng::{hash_labels, unit_f64};

/// Per-snapshot corruption probability (the paper's rate is ≈ 86/214 426
/// on the Europe map).
pub const FAULT_RATE: f64 = 0.0004;

/// The ways a snapshot can be unprocessable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The file is cut mid-element — invalid XML.
    TruncatedXml,
    /// An attribute value is garbage — invalid SVG geometry.
    MalformedAttribute,
    /// The router boxes are missing — extraction cannot attribute links.
    MissingRouters,
}

impl FaultKind {
    /// All corruption modes.
    pub const ALL: [FaultKind; 3] = [
        FaultKind::TruncatedXml,
        FaultKind::MalformedAttribute,
        FaultKind::MissingRouters,
    ];
}

/// Decides whether the snapshot of `map` at `t` is corrupted, and how.
#[must_use]
pub fn fault_for(seed: u64, map: MapKind, t: Timestamp) -> Option<FaultKind> {
    let key = hash_labels(seed, &[0xFA_17, map as u64, t.unix() as u64]);
    if unit_f64(key) >= FAULT_RATE {
        return None;
    }
    Some(match key % 4 {
        0 | 1 => FaultKind::TruncatedXml,
        2 => FaultKind::MalformedAttribute,
        _ => FaultKind::MissingRouters,
    })
}

/// Applies a corruption to rendered SVG text.
#[must_use]
pub fn corrupt(svg: &str, fault: FaultKind, seed: u64) -> String {
    match fault {
        FaultKind::TruncatedXml => {
            // Cut somewhere in the middle, at a char boundary.
            let cut = (svg.len() / 2).max(1) + (hash_labels(seed, &[1]) % 64) as usize;
            let mut cut = cut.min(svg.len().saturating_sub(1));
            while cut > 0 && !svg.is_char_boundary(cut) {
                cut -= 1;
            }
            svg[..cut].to_owned()
        }
        FaultKind::MalformedAttribute => {
            // Damage the first polygon's points attribute the way the
            // paper describes: a malformed value, still well-formed XML.
            match svg.find("points=\"") {
                Some(at) => {
                    let value_start = at + "points=\"".len();
                    match svg[value_start..].find('"') {
                        Some(len) => {
                            let mut out = String::with_capacity(svg.len());
                            out.push_str(&svg[..value_start]);
                            out.push_str("12,,garbage");
                            out.push_str(&svg[value_start + len..]);
                            out
                        }
                        None => svg.to_owned(),
                    }
                }
                None => svg.to_owned(),
            }
        }
        FaultKind::MissingRouters => {
            // Drop every object rect/text pair, leaving links dangling.
            let mut out = String::with_capacity(svg.len());
            let mut rest = svg;
            loop {
                // Remove self-closed rects and the text elements that
                // carry class="object".
                let Some(at) = rest.find("class=\"object\"") else {
                    out.push_str(rest);
                    break;
                };
                // Walk back to the opening '<'.
                let elem_start = rest[..at].rfind('<').unwrap_or(0);
                out.push_str(&rest[..elem_start]);
                let after = &rest[elem_start..];
                // The element ends at the first "/>" or "</text>".
                let end = if after.starts_with("<rect") {
                    after.find("/>").map(|i| i + 2)
                } else {
                    after.find("</text>").map(|i| i + "</text>".len())
                };
                match end {
                    Some(end) => rest = &after[end..],
                    None => {
                        out.push_str(after);
                        break;
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_geometry::{Point, Rect};
    use wm_svg::{Builder, Document};

    fn sample_svg() -> String {
        let mut b = Builder::new(400.0, 300.0);
        b.rect("object", Rect::new(10.0, 10.0, 80.0, 20.0));
        b.text("object", Point::new(14.0, 24.0), "rbx-g1-nc1");
        b.rect("object", Rect::new(200.0, 10.0, 80.0, 20.0));
        b.text("object", Point::new(204.0, 24.0), "fra-g1-nc1");
        b.polygon(
            "link",
            &[
                Point::new(90.0, 20.0),
                Point::new(140.0, 16.0),
                Point::new(140.0, 24.0),
            ],
        );
        b.polygon(
            "link",
            &[
                Point::new(200.0, 20.0),
                Point::new(150.0, 16.0),
                Point::new(150.0, 24.0),
            ],
        );
        b.text("labellink", Point::new(130.0, 12.0), "42 %");
        b.text("labellink", Point::new(160.0, 12.0), "9 %");
        b.finish()
    }

    #[test]
    fn truncation_breaks_xml() {
        let svg = sample_svg();
        let broken = corrupt(&svg, FaultKind::TruncatedXml, 1);
        assert!(broken.len() < svg.len());
        assert!(Document::parse(&broken).is_err());
    }

    #[test]
    fn malformed_attribute_breaks_geometry_not_xml() {
        let svg = sample_svg();
        let broken = corrupt(&svg, FaultKind::MalformedAttribute, 1);
        let err = Document::parse(&broken).unwrap_err();
        assert!(
            matches!(err, wm_svg::ParseError::BadGeometry { .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_routers_removes_objects_keeps_links() {
        let svg = sample_svg();
        let broken = corrupt(&svg, FaultKind::MissingRouters, 1);
        let doc = Document::parse(&broken).expect("still valid SVG");
        assert_eq!(doc.elements_with_class_prefix("object").count(), 0);
        assert!(doc.elements.iter().any(|e| e.class_is("link")));
    }

    #[test]
    fn fault_rate_is_small_but_nonzero() {
        let mut faults = 0;
        let n = 200_000;
        for i in 0..n {
            let t = Timestamp::from_unix(i64::from(i) * 300);
            if fault_for(42, MapKind::Europe, t).is_some() {
                faults += 1;
            }
        }
        let rate = f64::from(faults) / f64::from(n);
        assert!(
            rate > FAULT_RATE / 4.0 && rate < FAULT_RATE * 4.0,
            "rate {rate}"
        );
    }

    #[test]
    fn all_fault_kinds_occur() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..3_000_000i64 {
            if let Some(kind) = fault_for(42, MapKind::Europe, Timestamp::from_unix(i * 300)) {
                seen.insert(format!("{kind:?}"));
            }
            if seen.len() == 3 {
                break;
            }
        }
        assert_eq!(seen.len(), 3, "saw only {seen:?}");
    }

    #[test]
    fn fault_decision_is_deterministic() {
        let t = Timestamp::from_ymd(2021, 5, 5);
        assert_eq!(
            fault_for(1, MapKind::Europe, t),
            fault_for(1, MapKind::Europe, t)
        );
    }
}
