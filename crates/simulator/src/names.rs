//! OVH-flavoured name generation.
//!
//! Router names follow the convention visible on the real weathermap
//! (`fra-fr5-pb6-nc5`: site, building, pod, device); peerings carry the
//! UPPERCASE names of transit providers and internet exchanges. The
//! extraction pipeline classifies nodes by the lowercase/UPPERCASE
//! convention, so generated names must respect it strictly.

use wm_model::MapKind;

/// Site (point-of-presence) codes per map, ordered roughly by importance.
///
/// European codes mirror real OVH sites (Roubaix, Gravelines, Strasbourg,
/// Frankfurt, …); the other regions use plausible IATA-style codes.
#[must_use]
pub fn site_codes(map: MapKind) -> &'static [&'static str] {
    match map {
        MapKind::Europe => &[
            "rbx", "gra", "sbg", "par", "fra", "lon", "ams", "waw", "mil", "mad", "vie", "pra",
            "bru", "zur", "dub", "lim", "eri",
        ],
        MapKind::NorthAmerica => &[
            "bhs", "nwk", "ash", "chi", "dal", "lax", "sea", "mia", "tor", "hil", "vin",
        ],
        MapKind::AsiaPacific => &["sgp", "syd", "tyo", "hkg", "mum", "sel"],
        // The World map's routers come from the other maps; these codes
        // are only used when a synthetic standalone World map is built.
        MapKind::World => &["rbx", "gra", "nwk", "ash", "sgp", "syd", "fra", "lon"],
    }
}

/// Peering names per map (transit providers and IXPs).
#[must_use]
pub fn peering_names(map: MapKind) -> &'static [&'static str] {
    match map {
        MapKind::Europe => &[
            "AMS-IX",
            "DE-CIX",
            "FRANCE-IX",
            "LINX",
            "ARELION",
            "VODAFONE",
            "OMANTEL",
            "COGENT",
            "LUMEN",
            "TELIA",
            "GTT",
            "ORANGE",
            "NTT",
            "TATA",
            "ZAYO",
            "EQUINIX-IX",
            "ESPANIX",
            "MIX",
            "NETNOD",
            "VIX",
            "PLIX",
            "SWISSIX",
            "BNIX",
            "INEX",
            "LU-CIX",
            "TELEFONICA",
            "DTAG",
            "SEABONE",
            "RETN",
            "CORE-BACKBONE",
        ],
        MapKind::NorthAmerica => &[
            "EQUINIX-IX",
            "TORIX",
            "SIX",
            "ANY2",
            "NYIIX",
            "COGENT",
            "LUMEN",
            "ARELION",
            "GTT",
            "ZAYO",
            "TATA",
            "NTT",
            "TELIA",
            "HE",
            "COMCAST",
            "VERIZON",
            "ATT",
            "QIX",
            "DECIX-NY",
            "FL-IX",
        ],
        MapKind::AsiaPacific => &[
            "SGIX",
            "EQUINIX-IX",
            "JPNAP",
            "BBIX",
            "HKIX",
            "MEGAPORT",
            "NTT",
            "TATA",
            "SINGTEL",
            "TELSTRA",
            "PCCW",
            "KDDI",
        ],
        MapKind::World => &[],
    }
}

/// Builds a router name: `site-<building><n>-<device>`.
///
/// `building` and `device` indices give the fleet realistic-looking
/// diversity (`rbx-g1-nc5`, `fra-fr5-pb6`, …) while staying unique per
/// `(site, index)` pair.
#[must_use]
pub fn router_name(site: &str, index: usize) -> String {
    // Cycle through a few device-class suffixes so names vary like the
    // real map's mix of chassis generations.
    const BUILDINGS: [&str; 4] = ["g", "fr", "pb", "a"];
    const DEVICES: [&str; 3] = ["nc", "bb", "sdr"];
    let building = BUILDINGS[index % BUILDINGS.len()];
    let device = DEVICES[(index / 2) % DEVICES.len()];
    format!("{site}-{building}{}-{device}{}", index % 9 + 1, index + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_model::NodeKind;

    #[test]
    fn router_names_classify_as_routers() {
        for site in site_codes(MapKind::Europe) {
            for i in 0..20 {
                let name = router_name(site, i);
                assert_eq!(NodeKind::classify(&name), NodeKind::Router, "{name}");
            }
        }
    }

    #[test]
    fn peering_names_classify_as_peerings() {
        for map in MapKind::ALL {
            for name in peering_names(map) {
                assert_eq!(NodeKind::classify(name), NodeKind::Peering, "{name}");
            }
        }
    }

    #[test]
    fn router_names_are_unique_per_site() {
        let names: Vec<String> = (0..50).map(|i| router_name("rbx", i)).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn world_map_has_no_peerings() {
        assert!(peering_names(MapKind::World).is_empty());
    }

    #[test]
    fn site_pools_are_distinct_within_a_map() {
        for map in MapKind::ALL {
            let mut codes = site_codes(map).to_vec();
            codes.sort_unstable();
            codes.dedup();
            assert_eq!(codes.len(), site_codes(map).len());
        }
    }
}
