//! A synthetic OVH-like backbone and its weathermap — the data-source
//! substitute of the reproduction.
//!
//! The paper's raw material is two years of five-minute SVG snapshots
//! scraped from the public OVH Network Weathermap. That data source cannot
//! be re-scraped here, so this crate builds the closest synthetic
//! equivalent exercising the same downstream code paths:
//!
//! * [`genesis`] — an OVH-shaped four-map backbone (sites, core/agg/leaf
//!   router roles, parallel-link groups, peerings) calibrated so the
//!   September 2022 state matches the paper's Table 1 exactly;
//! * [`evolution`] — the scripted two-year history §5 narrates
//!   (make-before-break router adds, June 2021 removals, the August 2021
//!   dip, step-wise internal growth with the November 2021 event, gradual
//!   external growth, and Fig. 6's AMS-IX upgrade);
//! * [`traffic`] — a deterministic, random-access traffic model shaped to
//!   Fig. 5's diurnal cycle, load CDF and ECMP imbalance distributions;
//! * [`layout`] and [`render`] — a 2-D placement engine and SVG renderer
//!   reproducing the flat element structure the extraction algorithms
//!   re-discover geometrically;
//! * [`collector`] — the collection process with Fig. 2/3's availability
//!   segments, short gaps and the May 2022 fix;
//! * [`faults`] — the rare corrupted files of Table 2.
//!
//! Entry point: [`Simulation`], a deterministic world keyed by one
//! [`SimulationConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod config;
pub mod evolution;
pub mod faults;
pub mod genesis;
pub mod layout;
pub mod names;
pub mod render;
pub mod rng;
pub mod sim;
pub mod state;
pub mod traffic;

pub use collector::CollectionPlan;
pub use config::{targets, MapTargets, SimulationConfig};
pub use evolution::{PeeringDbRecord, Timeline, UpgradeScenario};
pub use faults::FaultKind;
pub use render::RenderedSnapshot;
pub use sim::{CorpusFile, CorpusIter, Simulation};
pub use traffic::{Direction, TrafficModel};
