//! The collection-process model.
//!
//! Fig. 2 and Fig. 3 of the paper measure the *collection*, not the
//! network: which five-minute snapshots actually made it to disk. The
//! observed structure is
//!
//! * the Europe map was collected over the whole July 2020 → September
//!   2022 period at ≥ 99.8 % of the five-minute resolution;
//! * the World, North America and Asia-Pacific maps were collected July →
//!   late September 2020, then again from October 2021 — a year-long hole;
//! * short gaps (one or two missing snapshots) are much more common on
//!   the non-Europe maps (< 10 % of intervals are coarser than 5 min);
//! * an operational issue was identified and fixed in May 2022, after
//!   which short gaps become rarer;
//! * a handful of multi-hour outages dot the whole period.
//!
//! This module reproduces that structure with scripted availability
//! segments and hash-driven miss/burst/outage processes.

use wm_model::{time::SNAPSHOT_INTERVAL, Duration, MapKind, Timestamp};

use crate::config::SimulationConfig;
use crate::rng::{hash_labels, unit_f64};

/// When the operational issue was fixed (May 2022, §4).
pub fn fix_date() -> Timestamp {
    Timestamp::from_ymd(2022, 5, 16)
}

/// The collection plan of one map: availability segments plus stochastic
/// miss processes.
#[derive(Debug, Clone)]
pub struct CollectionPlan {
    map: MapKind,
    seed: u64,
    /// Closed-open availability windows.
    segments: Vec<(Timestamp, Timestamp)>,
    /// Per-snapshot miss probability before/after the May 2022 fix.
    miss_rate: (f64, f64),
    /// Per-day probability that a multi-snapshot burst gap occurs.
    burst_rate: (f64, f64),
}

impl CollectionPlan {
    /// Builds the plan of `map` under `config`.
    #[must_use]
    pub fn new(map: MapKind, config: &SimulationConfig) -> CollectionPlan {
        let hole_start = Timestamp::from_ymd(2020, 9, 28);
        let hole_end = Timestamp::from_ymd(2021, 10, 4);
        let segments = if map == MapKind::Europe {
            vec![(config.start, config.end)]
        } else if config.start < hole_start && hole_end < config.end {
            vec![(config.start, hole_start), (hole_end, config.end)]
        } else {
            vec![(config.start, config.end)]
        };
        let (miss_rate, burst_rate) = if map == MapKind::Europe {
            ((0.0015, 0.0003), (0.004, 0.001))
        } else {
            ((0.045, 0.010), (0.030, 0.008))
        };
        CollectionPlan {
            map,
            seed: hash_labels(config.seed, &[0xC0_11_EC, map as u64]),
            segments,
            miss_rate,
            burst_rate,
        }
    }

    /// The availability segments (for Fig. 2's ground truth).
    #[must_use]
    pub fn segments(&self) -> &[(Timestamp, Timestamp)] {
        &self.segments
    }

    /// Which map this plan covers.
    #[must_use]
    pub fn map(&self) -> MapKind {
        self.map
    }

    /// Whether the collector was inside an availability window at `t`.
    #[must_use]
    pub fn available(&self, t: Timestamp) -> bool {
        self.segments
            .iter()
            .any(|(start, end)| *start <= t && t < *end)
    }

    /// Whether the snapshot at grid instant `t` was actually collected.
    #[must_use]
    pub fn collected(&self, t: Timestamp) -> bool {
        if !self.available(t) {
            return false;
        }
        let fixed = t >= fix_date();
        let slot = t.unix().div_euclid(SNAPSHOT_INTERVAL.as_secs()) as u64;
        let day = t.unix().div_euclid(86_400) as u64;

        // Scripted multi-hour outages: roughly three per year per map.
        let outage_key = hash_labels(self.seed, &[1, day]);
        if unit_f64(outage_key) < 0.008 {
            // The outage covers a hash-chosen window of 2–9 hours.
            let start_hour = (hash_labels(self.seed, &[2, day]) % 15) as i64;
            let len_hours = 2 + (hash_labels(self.seed, &[3, day]) % 8) as i64;
            let hour = t.unix().rem_euclid(86_400) / 3_600;
            if (start_hour..start_hour + len_hours).contains(&hour) {
                return false;
            }
        }

        // Burst gaps: a few consecutive snapshots missing.
        let burst_rate = if fixed {
            self.burst_rate.1
        } else {
            self.burst_rate.0
        };
        if unit_f64(hash_labels(self.seed, &[4, day])) < burst_rate {
            let burst_start_slot = hash_labels(self.seed, &[5, day]) % 288;
            let burst_len = 2 + hash_labels(self.seed, &[6, day]) % 5;
            let slot_of_day = (t.unix().rem_euclid(86_400) / SNAPSHOT_INTERVAL.as_secs()) as u64;
            if (burst_start_slot..burst_start_slot + burst_len).contains(&slot_of_day) {
                return false;
            }
        }

        // Independent single-snapshot misses.
        let miss_rate = if fixed {
            self.miss_rate.1
        } else {
            self.miss_rate.0
        };
        unit_f64(hash_labels(self.seed, &[7, slot])) >= miss_rate
    }

    /// All collected snapshot instants, on the five-minute grid.
    pub fn collected_times(&self) -> impl Iterator<Item = Timestamp> + '_ {
        let step = SNAPSHOT_INTERVAL;
        self.segments.iter().flat_map(move |(start, end)| {
            let mut times = Vec::new();
            let mut t = start.align_down(step);
            if t < *start {
                t += step;
            }
            while t < *end {
                if self.collected(t) {
                    times.push(t);
                }
                t += step;
            }
            times
        })
    }

    /// Collected instants within `[from, to)` — for windowed experiments.
    pub fn collected_times_between(
        &self,
        from: Timestamp,
        to: Timestamp,
    ) -> impl Iterator<Item = Timestamp> + '_ {
        let step = SNAPSHOT_INTERVAL;
        let mut t = from.align_down(step);
        if t < from {
            t += step;
        }
        std::iter::from_fn(move || {
            while t < to {
                let cur = t;
                t += step;
                if self.collected(cur) {
                    return Some(cur);
                }
            }
            None
        })
    }
}

/// Gap durations between consecutive instants.
#[must_use]
pub fn gaps(times: &[Timestamp]) -> Vec<Duration> {
    times.windows(2).map(|w| w[1] - w[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SimulationConfig {
        SimulationConfig::paper(17)
    }

    #[test]
    fn europe_covers_the_whole_period() {
        let plan = CollectionPlan::new(MapKind::Europe, &config());
        assert_eq!(plan.segments().len(), 1);
        assert!(plan.available(Timestamp::from_ymd(2021, 3, 1)));
    }

    #[test]
    fn other_maps_have_the_year_long_hole() {
        for map in [MapKind::World, MapKind::NorthAmerica, MapKind::AsiaPacific] {
            let plan = CollectionPlan::new(map, &config());
            assert_eq!(plan.segments().len(), 2, "{map}");
            assert!(plan.available(Timestamp::from_ymd(2020, 8, 15)), "{map}");
            assert!(!plan.available(Timestamp::from_ymd(2021, 3, 1)), "{map}");
            assert!(plan.available(Timestamp::from_ymd(2022, 2, 1)), "{map}");
        }
    }

    #[test]
    fn europe_five_minute_coverage_matches_fig_3() {
        let plan = CollectionPlan::new(MapKind::Europe, &config());
        // Sample a pre-fix month.
        let times: Vec<Timestamp> = plan
            .collected_times_between(
                Timestamp::from_ymd(2021, 2, 1),
                Timestamp::from_ymd(2021, 3, 1),
            )
            .collect();
        let gaps = gaps(&times);
        let five_min = gaps.iter().filter(|g| g.as_secs() == 300).count();
        let ratio = five_min as f64 / gaps.len() as f64;
        assert!(ratio > 0.99, "Europe 5-min ratio {ratio}");
    }

    #[test]
    fn non_europe_maps_are_coarser_but_mostly_under_ten_minutes() {
        let plan = CollectionPlan::new(MapKind::NorthAmerica, &config());
        let times: Vec<Timestamp> = plan
            .collected_times_between(
                Timestamp::from_ymd(2022, 1, 1),
                Timestamp::from_ymd(2022, 2, 1),
            )
            .collect();
        let gaps = gaps(&times);
        let five_min = gaps.iter().filter(|g| g.as_secs() == 300).count() as f64;
        let within_ten = gaps.iter().filter(|g| g.as_secs() <= 600).count() as f64;
        let n = gaps.len() as f64;
        assert!(five_min / n > 0.90, "five-minute share {}", five_min / n);
        assert!(five_min / n < 0.999, "NA should be coarser than Europe");
        assert!(within_ten / n > 0.97, "ten-minute share {}", within_ten / n);
    }

    #[test]
    fn the_may_2022_fix_reduces_short_gaps() {
        let plan = CollectionPlan::new(MapKind::AsiaPacific, &config());
        let rate = |from: Timestamp, to: Timestamp| {
            let times: Vec<Timestamp> = plan.collected_times_between(from, to).collect();
            let gaps = gaps(&times);
            gaps.iter().filter(|g| g.as_secs() > 300).count() as f64 / gaps.len() as f64
        };
        let before = rate(
            Timestamp::from_ymd(2022, 3, 1),
            Timestamp::from_ymd(2022, 5, 1),
        );
        let after = rate(
            Timestamp::from_ymd(2022, 6, 1),
            Timestamp::from_ymd(2022, 8, 1),
        );
        assert!(
            after < before / 2.0,
            "gap rate before {before}, after {after}"
        );
    }

    #[test]
    fn collection_is_deterministic() {
        let a = CollectionPlan::new(MapKind::Europe, &config());
        let b = CollectionPlan::new(MapKind::Europe, &config());
        let window_start = Timestamp::from_ymd(2021, 6, 1);
        let window_end = Timestamp::from_ymd(2021, 6, 8);
        let ta: Vec<Timestamp> = a
            .collected_times_between(window_start, window_end)
            .collect();
        let tb: Vec<Timestamp> = b
            .collected_times_between(window_start, window_end)
            .collect();
        assert_eq!(ta, tb);
        assert!(!ta.is_empty());
    }

    #[test]
    fn outages_produce_multi_hour_gaps_somewhere() {
        let plan = CollectionPlan::new(MapKind::Europe, &config());
        let times: Vec<Timestamp> = plan
            .collected_times_between(
                Timestamp::from_ymd(2021, 1, 1),
                Timestamp::from_ymd(2021, 7, 1),
            )
            .collect();
        let max_gap = gaps(&times).into_iter().max().unwrap();
        assert!(
            max_gap >= Duration::from_hours(2),
            "expected at least one multi-hour outage, max gap {max_gap}"
        );
    }

    #[test]
    fn collected_times_respects_grid() {
        let plan = CollectionPlan::new(MapKind::Europe, &config());
        for t in plan.collected_times_between(
            Timestamp::from_ymd(2021, 1, 1),
            Timestamp::from_ymd(2021, 1, 2),
        ) {
            assert_eq!(t.unix() % 300, 0, "snapshot off the 5-minute grid: {t}");
        }
    }
}
