//! The synthetic traffic model.
//!
//! Produces every link-load percentage shown on the weathermap as a pure
//! function of `(seed, group, link, direction, time)` — random-access and
//! deterministic (see [`crate::rng`]). The model is parameterised to land
//! on the shapes of the paper's §5:
//!
//! * **Fig. 5a** — the median load follows a diurnal curve with its trough
//!   between 2 and 4 a.m. and its peak between 7 and 9 p.m., and the
//!   spread of the distribution grows when the network is loaded.
//! * **Fig. 5b** — roughly 75 % of loads sit below 33 %, loads above 60 %
//!   are rare, and external links run cooler than internal ones (the
//!   peering headroom argument).
//! * **Fig. 5c** — ECMP spreads traffic across parallel links so well that
//!   most directed groups show an imbalance of at most one percentage
//!   point, externals even tighter.
//! * **Fig. 6** — per-link load equals group demand divided by the active
//!   link count, so activating an added parallel link dilutes per-link
//!   loads by exactly the capacity ratio.

use wm_model::{Load, NodeKind, Timestamp};

use crate::rng::{hash_labels, uniform, unit_f64, value_noise};
use crate::state::{LinkGroup, LinkSlot, NetworkState};

/// Which way across a group traffic flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// From endpoint `a` towards endpoint `b`.
    AtoB,
    /// From endpoint `b` towards endpoint `a`.
    BtoA,
}

impl Direction {
    /// Both directions, for iteration.
    pub const BOTH: [Direction; 2] = [Direction::AtoB, Direction::BtoA];

    fn label(self) -> u64 {
        match self {
            Direction::AtoB => 0,
            Direction::BtoA => 1,
        }
    }
}

/// Peak hour of the diurnal cycle (Fig. 5a: 7–9 p.m.).
const PEAK_HOUR: f64 = 20.0;
/// Trough hour of the diurnal cycle (Fig. 5a: 2–4 a.m.).
const TROUGH_HOUR: f64 = 3.0;
/// Relative amplitude of the diurnal swing.
const DIURNAL_AMPLITUDE: f64 = 0.38;
/// Weekend traffic damping.
const WEEKEND_FACTOR: f64 = 0.92;
/// Probability that a link spends a given day disabled for maintenance.
const MAINTENANCE_DAILY_PROBABILITY: f64 = 0.012;

/// The deterministic traffic model.
#[derive(Debug, Clone, Copy)]
pub struct TrafficModel {
    seed: u64,
}

impl TrafficModel {
    /// Creates a model; all draws derive from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> TrafficModel {
        TrafficModel {
            seed: hash_labels(seed, &[0x007A_FF1C]),
        }
    }

    /// The diurnal multiplier at `t`, in
    /// `[1 - DIURNAL_AMPLITUDE, 1 + DIURNAL_AMPLITUDE]`.
    ///
    /// The curve is a cosine warped so the rise (03 h → 20 h) takes 17
    /// hours and the fall (20 h → 03 h) takes 7 — matching the asymmetric
    /// day cycle visible in Fig. 5a rather than a plain 12-12 sinusoid.
    #[must_use]
    pub fn diurnal_multiplier(&self, t: Timestamp) -> f64 {
        let h = t.fractional_hour();
        let rise_span = (PEAK_HOUR - TROUGH_HOUR + 24.0) % 24.0; // 17 h
        let fall_span = 24.0 - rise_span; // 7 h
        let since_trough = (h - TROUGH_HOUR + 24.0) % 24.0;
        let shape = if since_trough < rise_span {
            // Climbing from trough (-1) to peak (+1).
            -(std::f64::consts::PI * since_trough / rise_span).cos()
        } else {
            let since_peak = since_trough - rise_span;
            (std::f64::consts::PI * since_peak / fall_span).cos()
        };
        1.0 + DIURNAL_AMPLITUDE * shape
    }

    /// The weekly multiplier at `t` (weekends run cooler).
    #[must_use]
    pub fn weekly_multiplier(&self, t: Timestamp) -> f64 {
        if t.weekday().is_weekend() {
            WEEKEND_FACTOR
        } else {
            1.0
        }
    }

    /// Mean utilisation (fraction of one link's capacity) of a group in
    /// one direction, before diurnal/weekly/noise modulation.
    ///
    /// Internal links are drawn hotter than external ones; the shaping
    /// exponent skews the population towards low loads so the overall CDF
    /// reproduces Fig. 5b.
    #[must_use]
    pub fn base_utilisation(&self, group: &LinkGroup, direction: Direction, internal: bool) -> f64 {
        let u = uniform(self.seed, &[1, group.id, direction.label()]);
        let shaped = u.powf(1.25);
        if internal {
            0.06 + 0.55 * shaped
        } else {
            0.04 + 0.42 * shaped
        }
    }

    /// The ECMP imbalance scale of a group in one direction.
    ///
    /// Most groups are nearly perfectly balanced (Fig. 5c: more than 60 %
    /// of imbalance values are ≤ 1 %); externals are tighter than
    /// internals (> 90 % within 2 %).
    #[must_use]
    pub fn ecmp_sigma(&self, group: &LinkGroup, direction: Direction, internal: bool) -> f64 {
        let u = uniform(self.seed, &[2, group.id, direction.label()]);
        if internal {
            match u {
                u if u < 0.45 => 0.005,
                u if u < 0.80 => 0.040,
                _ => 0.120,
            }
        } else {
            match u {
                u if u < 0.70 => 0.004,
                u if u < 0.92 => 0.020,
                _ => 0.060,
            }
        }
    }

    /// Group demand at `t` in units of one link's capacity ×
    /// `base_links`: dividing by the active link count yields per-link
    /// utilisation.
    #[must_use]
    pub fn group_demand(
        &self,
        group: &LinkGroup,
        direction: Direction,
        internal: bool,
        t: Timestamp,
    ) -> f64 {
        let base = self.base_utilisation(group, direction, internal);
        let noise = 1.0
            + 0.14
                * value_noise(
                    self.seed,
                    &[3, group.id, direction.label()],
                    t.unix(),
                    6 * 3_600,
                );
        let demand_per_link = base * self.diurnal_multiplier(t) * self.weekly_multiplier(t) * noise;
        demand_per_link * group.base_links
    }

    /// Whether a link spends the UTC day containing `t` in maintenance
    /// (drawn at `0 %` in both directions).
    #[must_use]
    pub fn in_maintenance(&self, slot: &LinkSlot, t: Timestamp) -> bool {
        let day = t.unix().div_euclid(86_400) as u64;
        unit_f64(hash_labels(self.seed, &[4, slot.id, day])) < MAINTENANCE_DAILY_PROBABILITY
    }

    /// The displayed load of one link of a group in one direction at `t`.
    ///
    /// `internal` tells whether both endpoints are OVH routers (the caller
    /// knows the node kinds; the group only stores indices).
    #[must_use]
    pub fn link_load(
        &self,
        group: &LinkGroup,
        slot: &LinkSlot,
        direction: Direction,
        internal: bool,
        t: Timestamp,
    ) -> Load {
        if !slot.active || self.in_maintenance(slot, t) {
            return Load::ZERO;
        }
        let active = group.active_links().max(1) as f64;
        let per_link = self.group_demand(group, direction, internal, t) / active;
        // Quasi-static ECMP hash skew, drifting over ~a day.
        let sigma = self.ecmp_sigma(group, direction, internal);
        let skew = 1.0
            + sigma
                * value_noise(
                    self.seed,
                    &[5, slot.id, direction.label()],
                    t.unix(),
                    86_400,
                );
        Load::from_f64_clamped(per_link * skew * 100.0)
    }

    /// All loads of a state at `t`: `(group index, link index, load a→b,
    /// load b→a)` in state order — the renderer's input.
    #[must_use]
    pub fn price_state(
        &self,
        state: &NetworkState,
        t: Timestamp,
    ) -> Vec<(usize, usize, Load, Load)> {
        let mut out = Vec::new();
        for (gi, group) in state.groups.iter().enumerate() {
            let internal = state.nodes[group.a].kind == NodeKind::Router
                && state.nodes[group.b].kind == NodeKind::Router;
            for (li, slot) in group.links.iter().enumerate() {
                let ab = self.link_load(group, slot, Direction::AtoB, internal, t);
                let ba = self.link_load(group, slot, Direction::BtoA, internal, t);
                out.push((gi, li, ab, ba));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_model::MapKind;

    fn group(id: u64, links: usize) -> LinkGroup {
        LinkGroup {
            id,
            a: 0,
            b: 1,
            links: (0..links)
                .map(|i| LinkSlot {
                    id: id * 100 + i as u64,
                    active: true,
                    label_a: format!("#{}", i + 1),
                    label_b: format!("#{}", i + 1),
                })
                .collect(),
            capacity_gbps: 100,
            base_links: links as f64,
        }
    }

    fn noon(day: i64) -> Timestamp {
        Timestamp::from_unix(day * 86_400 + 12 * 3_600)
    }

    #[test]
    fn diurnal_peak_and_trough_are_where_the_paper_says() {
        let m = TrafficModel::new(1);
        let at = |h: u8| m.diurnal_multiplier(Timestamp::from_ymd_hms(2021, 3, 10, h, 0, 0));
        // Trough between 2 and 4 a.m., peak between 7 and 9 p.m.
        let hours: Vec<f64> = (0..24).map(|h| at(h as u8)).collect();
        let min_h = (0..24)
            .min_by(|&a, &b| hours[a].total_cmp(&hours[b]))
            .unwrap();
        let max_h = (0..24)
            .max_by(|&a, &b| hours[a].total_cmp(&hours[b]))
            .unwrap();
        assert!((2..=4).contains(&min_h), "trough at {min_h}");
        assert!((19..=21).contains(&max_h), "peak at {max_h}");
        // The curve is continuous across midnight.
        let before = m.diurnal_multiplier(Timestamp::from_ymd_hms(2021, 3, 10, 23, 59, 0));
        let after = m.diurnal_multiplier(Timestamp::from_ymd_hms(2021, 3, 11, 0, 1, 0));
        assert!((before - after).abs() < 0.02);
    }

    #[test]
    fn weekends_run_cooler() {
        let m = TrafficModel::new(1);
        let saturday = Timestamp::from_ymd_hms(2021, 3, 13, 12, 0, 0);
        let wednesday = Timestamp::from_ymd_hms(2021, 3, 10, 12, 0, 0);
        assert!(m.weekly_multiplier(saturday) < m.weekly_multiplier(wednesday));
    }

    #[test]
    fn load_population_matches_fig_5b() {
        let m = TrafficModel::new(99);
        let mut internal_loads: Vec<f64> = Vec::new();
        let mut external_loads: Vec<f64> = Vec::new();
        for gid in 0..300u64 {
            let g = group(gid, 4);
            for day in 0..6 {
                for hour in [2, 8, 14, 20] {
                    let t = Timestamp::from_unix(day * 86_400 + hour * 3_600);
                    for slot in &g.links {
                        let li = m.link_load(&g, slot, Direction::AtoB, true, t).as_f64();
                        let le = m.link_load(&g, slot, Direction::AtoB, false, t).as_f64();
                        if li > 0.0 {
                            internal_loads.push(li);
                        }
                        if le > 0.0 {
                            external_loads.push(le);
                        }
                    }
                }
            }
        }
        let pct = |v: &mut Vec<f64>, q: f64| {
            v.sort_by(f64::total_cmp);
            v[((v.len() - 1) as f64 * q) as usize]
        };
        let mut all: Vec<f64> = internal_loads
            .iter()
            .chain(&external_loads)
            .copied()
            .collect();
        let p75 = pct(&mut all, 0.75);
        assert!(p75 < 38.0, "75th percentile too hot: {p75}");
        let p99 = pct(&mut all, 0.99);
        assert!(p99 < 75.0, "99th percentile too hot: {p99}");
        // Externals cooler than internals on average.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&external_loads) < mean(&internal_loads),
            "external {} !< internal {}",
            mean(&external_loads),
            mean(&internal_loads)
        );
    }

    #[test]
    fn imbalance_population_matches_fig_5c() {
        let m = TrafficModel::new(7);
        let imbalances = |internal: bool| -> Vec<f64> {
            let mut out = Vec::new();
            for gid in 0..400u64 {
                let g = group(gid + if internal { 0 } else { 10_000 }, 4);
                let t = noon(gid as i64 % 30);
                let loads: Vec<f64> = g
                    .links
                    .iter()
                    .map(|s| m.link_load(&g, s, Direction::AtoB, internal, t).as_f64())
                    .filter(|l| *l > 1.0)
                    .collect();
                if loads.len() >= 2 {
                    let max = loads.iter().copied().fold(f64::MIN, f64::max);
                    let min = loads.iter().copied().fold(f64::MAX, f64::min);
                    out.push(max - min);
                }
            }
            out
        };
        let internal = imbalances(true);
        let frac_le =
            |v: &[f64], x: f64| v.iter().filter(|i| **i <= x).count() as f64 / v.len() as f64;
        assert!(
            frac_le(&internal, 1.0) > 0.55,
            "only {:.2} of internal imbalances ≤ 1 %",
            frac_le(&internal, 1.0)
        );
        let external = imbalances(false);
        assert!(
            frac_le(&external, 2.0) > 0.88,
            "only {:.2} of external imbalances ≤ 2 %",
            frac_le(&external, 2.0)
        );
    }

    #[test]
    fn inactive_links_read_zero() {
        let m = TrafficModel::new(1);
        let mut g = group(5, 3);
        g.links[2].active = false;
        let t = noon(10);
        assert_eq!(
            m.link_load(&g, &g.links[2], Direction::AtoB, true, t),
            Load::ZERO
        );
        assert_ne!(
            m.link_load(&g, &g.links[0], Direction::AtoB, true, t),
            Load::ZERO
        );
    }

    #[test]
    fn activation_dilutes_per_link_load() {
        let m = TrafficModel::new(21);
        let mut g = group(9, 4);
        // Install a fifth link, initially inactive.
        g.links.push(LinkSlot {
            id: 999,
            active: false,
            label_a: "#5".into(),
            label_b: "#5".into(),
        });
        let t = noon(42);
        let before: f64 = g.links[..4]
            .iter()
            .map(|s| m.link_load(&g, s, Direction::AtoB, false, t).as_f64())
            .sum::<f64>()
            / 4.0;
        g.links[4].active = true;
        let after: f64 = g
            .links
            .iter()
            .map(|s| m.link_load(&g, s, Direction::AtoB, false, t).as_f64())
            .sum::<f64>()
            / 5.0;
        let ratio = after / before;
        assert!(
            (ratio - 0.8).abs() < 0.08,
            "dilution ratio {ratio}, expected ≈ 4/5"
        );
    }

    #[test]
    fn maintenance_days_are_rare_and_whole_day() {
        let m = TrafficModel::new(3);
        let slot = LinkSlot {
            id: 77,
            active: true,
            label_a: "#1".into(),
            label_b: "#1".into(),
        };
        let mut days_in_maintenance = 0;
        for day in 0..2_000 {
            let morning = Timestamp::from_unix(day * 86_400 + 3_600);
            let evening = Timestamp::from_unix(day * 86_400 + 23 * 3_600);
            assert_eq!(
                m.in_maintenance(&slot, morning),
                m.in_maintenance(&slot, evening),
                "maintenance must cover the whole day"
            );
            if m.in_maintenance(&slot, morning) {
                days_in_maintenance += 1;
            }
        }
        let rate = f64::from(days_in_maintenance) / 2_000.0;
        assert!(rate > 0.001 && rate < 0.05, "maintenance rate {rate}");
    }

    #[test]
    fn loads_are_deterministic_and_direction_dependent() {
        let m = TrafficModel::new(5);
        let g = group(11, 2);
        let t = noon(100);
        let ab = m.link_load(&g, &g.links[0], Direction::AtoB, true, t);
        assert_eq!(ab, m.link_load(&g, &g.links[0], Direction::AtoB, true, t));
        let ba = m.link_load(&g, &g.links[0], Direction::BtoA, true, t);
        // Different direction draws a different base almost surely.
        assert_ne!((ab, 1), (ba, 2), "sanity");
    }

    #[test]
    fn price_state_covers_every_link() {
        let mut state = NetworkState::new(MapKind::Europe);
        state
            .apply(&crate::state::Event::AddRouter {
                name: "rbx-g1".into(),
                site: "rbx".into(),
            })
            .unwrap();
        state
            .apply(&crate::state::Event::AddRouter {
                name: "fra-g1".into(),
                site: "fra".into(),
            })
            .unwrap();
        state
            .apply(&crate::state::Event::AddGroup {
                a: "rbx-g1".into(),
                b: "fra-g1".into(),
                links: 3,
                capacity_gbps: 100,
            })
            .unwrap();
        let m = TrafficModel::new(1);
        let priced = m.price_state(&state, noon(5));
        assert_eq!(priced.len(), 3);
        assert!(priced.iter().all(|(gi, _, _, _)| *gi == 0));
    }
}
