//! Property-based round-trip of the corpus path codec over the whole
//! plausible time range.

use proptest::prelude::*;
use wm_dataset::{parse_path, relative_path, FileKind};
use wm_model::{MapKind, Timestamp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn path_codec_round_trips(
        // 2000-01-01 .. ~2037, on the five-minute grid.
        slot in 3_155_760i64..700_000_000,
        map_idx in 0usize..4,
        kind_idx in 0usize..2,
    ) {
        let t = Timestamp::from_unix(slot * 300);
        let map = MapKind::ALL[map_idx];
        let kind = FileKind::ALL[kind_idx];
        let path = relative_path(map, kind, t);
        let (m, k, ts) = parse_path(&path)
            .unwrap_or_else(|| panic!("own path failed to parse: {path:?}"));
        prop_assert_eq!(m, map);
        prop_assert_eq!(k, kind);
        prop_assert_eq!(ts, t);
    }

    #[test]
    fn arbitrary_paths_never_panic(s in "[a-z0-9./-]{0,40}") {
        // Fuzzing the parser: garbage must be rejected, not crash.
        let _ = parse_path(std::path::Path::new(&s));
    }
}
