//! Property-based checks of the time-sharded segment store: the
//! manifest always partitions the corpus (no gaps, no overlaps, canonical
//! chunking), history round-trips exactly through seal/append/compact at
//! any capacity, and empty-window queries are answered from the manifest
//! alone.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use wm_dataset::segments::{decode_manifest, SegmentPolicy};
use wm_dataset::{
    build_longitudinal_windowed_with, segment_name, CacheMode, DatasetStore, FileKind,
    LongitudinalStore,
};
use wm_extract::to_yaml_string;
use wm_model::{
    Duration, Link, LinkEnd, Load, MapKind, Node, TimeRange, Timestamp, TopologySnapshot,
};

const MAP: MapKind = MapKind::Europe;

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh per-case corpus directory (cases run within one process).
fn temp_store(tag: &str) -> DatasetStore {
    let dir = std::env::temp_dir().join(format!(
        "ovh-weather-proptest-segments-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    DatasetStore::open(&dir).expect("temp corpus")
}

/// A small deterministic snapshot whose YAML round-trips exactly.
fn snapshot(t: Timestamp, salt: u64) -> TopologySnapshot {
    let mut s = TopologySnapshot::new(MAP, t);
    s.nodes = vec![Node::from_name("par-g1"), Node::from_name("rbx-g2")];
    let load = |v: u64| Load::new((v % 101) as u8).unwrap();
    s.links = vec![Link::new(
        LinkEnd::new(
            Node::from_name("par-g1"),
            Some("#1".to_owned()),
            load(salt.wrapping_mul(7) + 13),
        ),
        LinkEnd::new(
            Node::from_name("rbx-g2"),
            Some("#1".to_owned()),
            load(salt.wrapping_mul(3) + 41),
        ),
    )];
    s
}

fn write_snapshots(store: &DatasetStore, snapshots: &[TopologySnapshot]) {
    for s in snapshots {
        store
            .write(
                MAP,
                FileKind::Yaml,
                s.timestamp,
                to_yaml_string(s).as_bytes(),
            )
            .expect("write yaml");
    }
}

fn load_all(
    store: &DatasetStore,
    mode: CacheMode,
    capacity: usize,
) -> (LongitudinalStore, wm_dataset::CorpusLoadStats) {
    build_longitudinal_windowed_with(
        store,
        MAP,
        TimeRange::ALL,
        2,
        mode,
        SegmentPolicy { capacity },
    )
    .expect("windowed load")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seal/append/compact round-trip: whatever the capacity and however
    /// the corpus is split into an initial build plus an append, the
    /// final store reproduces every written snapshot in order, and the
    /// manifest is the canonical partition of the entry list.
    #[test]
    fn history_round_trips_and_manifest_partitions(
        capacity in 1usize..7,
        total in 1usize..32,
        split_pct in 0usize..101,
        salt in 0u64..1_000,
    ) {
        let store = temp_store("roundtrip");
        let base = Timestamp::from_ymd(2022, 4, 1);
        let all: Vec<TopologySnapshot> = (0..total)
            .map(|i| snapshot(base + Duration::from_minutes(5 * i as i64), salt + i as u64))
            .collect();

        // Initial build over a prefix, then append the rest.
        let split = total * split_pct / 100;
        write_snapshots(&store, &all[..split]);
        if split > 0 {
            let (built, _) = load_all(&store, CacheMode::Auto, capacity);
            prop_assert_eq!(built.len(), split);
        }
        write_snapshots(&store, &all[split..]);
        let (grown, _) = load_all(&store, CacheMode::Auto, capacity);

        // Round trip: the grown store holds exactly the written history.
        let reference = LongitudinalStore::from_snapshots(&all);
        prop_assert_eq!(&grown, &reference);
        let reloaded: Vec<TopologySnapshot> = grown.snapshots().collect();
        prop_assert_eq!(&reloaded, &all);

        // A forced compaction (rebuild) converges on the same store.
        let (compacted, _) = load_all(&store, CacheMode::Rebuild, capacity);
        prop_assert_eq!(&compacted, &reference);

        // The manifest is the canonical partition: ceil(n/c) rows, all
        // full except the last, contiguous in time, named after t_min,
        // spans strictly increasing and non-overlapping.
        let bytes = store
            .read_manifest_bytes(MAP)
            .expect("read manifest")
            .expect("manifest exists");
        let manifest = decode_manifest(&bytes).expect("valid manifest");
        prop_assert_eq!(manifest.segments.len(), total.div_ceil(capacity));
        let mut covered = 0usize;
        for (i, meta) in manifest.segments.iter().enumerate() {
            let chunk = &all[i * capacity..(i * capacity + capacity).min(total)];
            prop_assert_eq!(meta.entries as usize, chunk.len());
            prop_assert_eq!(meta.snapshots as usize, chunk.len());
            prop_assert_eq!(meta.t_min, chunk.first().unwrap().timestamp);
            prop_assert_eq!(meta.t_max, chunk.last().unwrap().timestamp);
            prop_assert_eq!(&meta.name, &segment_name(meta.t_min));
            if i > 0 {
                prop_assert!(manifest.segments[i - 1].t_max < meta.t_min, "overlap/gap");
            }
            covered += meta.entries as usize;
        }
        prop_assert_eq!(covered, total, "partition must cover every entry");

        std::fs::remove_dir_all(store.root()).expect("cleanup");
    }

    /// Empty or gap windows are answered without touching anything
    /// beyond the manifest: even with every segment file and the whole
    /// YAML tree deleted, a query into a coverage gap still returns an
    /// empty store.
    #[test]
    fn empty_windows_only_read_the_manifest(
        capacity in 1usize..6,
        sealed in 1usize..4,
        after in 1usize..6,
        salt in 0u64..1_000,
    ) {
        let store = temp_store("gaps");
        let base = Timestamp::from_ymd(2022, 4, 1);
        // `sealed * capacity` files, a one-day hole, then `after` more —
        // so a segment boundary falls exactly on the hole.
        let head: Vec<TopologySnapshot> = (0..sealed * capacity)
            .map(|i| snapshot(base + Duration::from_minutes(5 * i as i64), salt + i as u64))
            .collect();
        let resume = base + Duration::from_days(1);
        let tail: Vec<TopologySnapshot> = (0..after)
            .map(|i| snapshot(resume + Duration::from_minutes(5 * i as i64), salt + 77 + i as u64))
            .collect();
        write_snapshots(&store, &head);
        write_snapshots(&store, &tail);
        load_all(&store, CacheMode::Auto, capacity);

        // An inverted (empty) range reads nothing at all.
        let (empty, stats) = build_longitudinal_windowed_with(
            &store,
            MAP,
            TimeRange::new(resume, base),
            2,
            CacheMode::Auto,
            SegmentPolicy { capacity },
        )
        .expect("empty range");
        prop_assert_eq!(empty.len(), 0);
        prop_assert_eq!(stats, wm_dataset::CorpusLoadStats::default());

        // Strip the store down to just the manifest.
        for name in store.list_segment_files(MAP).expect("list") {
            store.remove_segment_file(MAP, &name).expect("remove segment");
        }
        let yaml_dir = store.root().join(MAP.slug());
        for sub in std::fs::read_dir(&yaml_dir).expect("map dir") {
            let path = sub.expect("entry").path();
            if path.file_name().is_some_and(|n| n == "yaml") {
                std::fs::remove_dir_all(&path).expect("drop yaml tree");
            }
        }

        // A window inside the hole intersects no segment and sits within
        // indexed coverage: answered from the manifest alone.
        let gap_start = Timestamp::from_unix(
            head.last().unwrap().timestamp.unix() + 1,
        );
        let (in_gap, stats) = build_longitudinal_windowed_with(
            &store,
            MAP,
            TimeRange::new(gap_start, resume),
            2,
            CacheMode::Auto,
            SegmentPolicy { capacity },
        )
        .expect("gap query must not need segments or YAML");
        prop_assert_eq!(in_gap.len(), 0);
        prop_assert_eq!(stats.cache.hits, 1);
        prop_assert_eq!(stats.cache.segments_touched, 0);
        prop_assert_eq!(stats.files, 0);

        std::fs::remove_dir_all(store.root()).expect("cleanup");
    }
}
