//! One time-window segment file of the sharded longitudinal cache.
//!
//! A segment is a self-contained slice of one map's history: a fixed
//! 56-byte header (magic, format version, CRC-protected time span and
//! counts) followed by a complete [`crate::codec`] image of the slice —
//! its own corpus-fingerprint section, section table and per-section
//! CRC-32s. Sealed segments hold exactly `SegmentPolicy::capacity`
//! snapshot files and never change once written; the youngest segment
//! is the *active tail* and is rewritten in place as the corpus grows,
//! so append cost is bounded by the tail, not the history.
//!
//! The header duplicates just enough of the payload (span, counts, the
//! identity digest of the fingerprint slice) that a manifest can be
//! recovered from segment files alone without decoding any payload.
//!
//! Like the monolithic image, encoding is fully deterministic: the same
//! slice of history encodes to the same bytes whoever builds it, at any
//! thread count — which is what lets a damaged segment be repaired in
//! place without rewriting the manifest.

use wm_model::Timestamp;

use crate::codec::{self, CacheError, CorpusFingerprint};
use crate::loader::CorpusLoadStats;
use crate::longitudinal::LongitudinalStore;

/// First bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"OVHWMSG\n";

/// Bumped on any incompatible change to the segment layout.
pub const SEGMENT_FORMAT_VERSION: u32 = 1;

/// Fixed size of the segment header preceding the payload image.
pub const SEGMENT_HEADER_LEN: usize = 56;

/// The CRC-protected header of one segment file.
///
/// `t_min`/`t_max` are the *closed* span of the snapshot-file
/// timestamps the segment covers (every segment holds at least one
/// file, so the span is always meaningful). `entries` counts corpus
/// files, `snapshots` the subset that parsed; `meta_digest` is the
/// [`identity_digest`] of the covered files, the value the manifest
/// uses to decide whether a segment still matches the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Timestamp of the oldest covered snapshot file.
    pub t_min: Timestamp,
    /// Timestamp of the newest covered snapshot file.
    pub t_max: Timestamp,
    /// Number of corpus files covered.
    pub entries: u64,
    /// Number of those files that parsed into snapshots.
    pub snapshots: u64,
    /// [`identity_digest`] over the covered `(path, size)` pairs.
    pub meta_digest: u64,
}

/// Order-sensitive digest over `(path, size)` pairs.
///
/// This is the cheap identity a windowed load can recompute from a
/// directory enumeration alone — no file contents are read, which is
/// what keeps append cost independent of history length. The full
/// content hashes still live in each segment's fingerprint section
/// (and the monolithic `index` path still validates them), so a
/// same-size in-place edit escapes only the windowed fast path; that
/// trade-off is documented in DESIGN.md decision 14.
#[must_use]
pub fn identity_digest<'a, I>(parts: I) -> u64
where
    I: IntoIterator<Item = (&'a str, u64)>,
{
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for (path, size) in parts {
        h ^= codec::fnv1a(path.as_bytes()) ^ size;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The identity digest of a fingerprint's `(path, size)` pairs.
#[must_use]
pub fn fingerprint_identity(fingerprint: &CorpusFingerprint) -> u64 {
    identity_digest(
        fingerprint
            .entries
            .iter()
            .map(|e| (e.path.as_str(), e.size)),
    )
}

/// Encodes one segment: header plus a full codec image of the slice.
#[must_use]
pub fn encode_segment(
    header: &SegmentHeader,
    store: &LongitudinalStore,
    fingerprint: &CorpusFingerprint,
    stats: &CorpusLoadStats,
) -> Vec<u8> {
    let mut body = codec::Writer { buf: Vec::new() };
    body.i64(header.t_min.unix());
    body.i64(header.t_max.unix());
    body.u64(header.entries);
    body.u64(header.snapshots);
    body.u64(header.meta_digest);
    let mut w = codec::Writer { buf: Vec::new() };
    w.bytes(&SEGMENT_MAGIC);
    w.u32(SEGMENT_FORMAT_VERSION);
    w.u32(codec::crc32(&body.buf));
    w.bytes(&body.buf);
    w.bytes(&codec::encode_store(store, fingerprint, stats));
    w.buf
}

/// Decodes and validates a segment header without touching the payload.
pub fn decode_segment_header(bytes: &[u8]) -> Result<SegmentHeader, CacheError> {
    let mut r = codec::Reader::new(bytes);
    if r.take(8, "segment magic")? != &SEGMENT_MAGIC[..] {
        return Err(CacheError::BadMagic);
    }
    let version = r.u32("segment version")?;
    if version != SEGMENT_FORMAT_VERSION {
        return Err(CacheError::UnsupportedVersion(version));
    }
    let crc = r.u32("segment header crc")?;
    let body = r.take(SEGMENT_HEADER_LEN - 16, "segment header")?;
    if codec::crc32(body) != crc {
        return Err(CacheError::ChecksumMismatch {
            section: "segment header".to_owned(),
        });
    }
    let mut b = codec::Reader::new(body);
    let t_min = Timestamp::from_unix(b.i64("segment t_min")?);
    let t_max = Timestamp::from_unix(b.i64("segment t_max")?);
    let entries = b.u64("segment entry count")?;
    let snapshots = b.u64("segment snapshot count")?;
    let meta_digest = b.u64("segment digest")?;
    if t_max < t_min {
        return Err(CacheError::Invalid("segment time span is inverted"));
    }
    if snapshots > entries {
        return Err(CacheError::Invalid(
            "segment counts more snapshots than files",
        ));
    }
    Ok(SegmentHeader {
        t_min,
        t_max,
        entries,
        snapshots,
        meta_digest,
    })
}

/// Decodes a whole segment file, cross-checking payload against header.
pub fn decode_segment(
    bytes: &[u8],
) -> Result<
    (
        SegmentHeader,
        LongitudinalStore,
        CorpusFingerprint,
        CorpusLoadStats,
    ),
    CacheError,
> {
    let header = decode_segment_header(bytes)?;
    let payload = bytes.get(SEGMENT_HEADER_LEN..).unwrap_or(&[]);
    let (store, fingerprint, stats) = codec::decode_store(payload)?;
    if store.len() as u64 != header.snapshots {
        return Err(CacheError::Invalid("segment snapshot count mismatch"));
    }
    if fingerprint.len() as u64 != header.entries {
        return Err(CacheError::Invalid("segment entry count mismatch"));
    }
    if fingerprint_identity(&fingerprint) != header.meta_digest {
        return Err(CacheError::Invalid("segment identity digest mismatch"));
    }
    let timestamps = store.timestamps();
    if let (Some(&first), Some(&last)) = (timestamps.first(), timestamps.last()) {
        if first < header.t_min || last > header.t_max {
            return Err(CacheError::Invalid("segment snapshots outside header span"));
        }
    }
    Ok((header, store, fingerprint, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::FingerprintEntry;
    use crate::longitudinal::ColumnarBuilder;
    use wm_model::{Duration, Link, LinkEnd, Load, MapKind, Node, TopologySnapshot};

    fn snapshot(t: Timestamp, load: u8) -> TopologySnapshot {
        let mut s = TopologySnapshot::new(MapKind::Europe, t);
        s.nodes = vec![Node::from_name("par-g1"), Node::from_name("rbx-g2")];
        s.links = vec![Link::new(
            LinkEnd::new(
                Node::from_name("par-g1"),
                Some("#1".to_owned()),
                Load::new(load).unwrap(),
            ),
            LinkEnd::new(
                Node::from_name("rbx-g2"),
                Some("#1".to_owned()),
                Load::new(load / 2).unwrap(),
            ),
        )];
        s
    }

    fn sample() -> (
        SegmentHeader,
        LongitudinalStore,
        CorpusFingerprint,
        CorpusLoadStats,
    ) {
        let t0 = Timestamp::from_ymd(2022, 2, 1);
        let snaps: Vec<TopologySnapshot> = (0..3)
            .map(|i| snapshot(t0 + Duration::from_minutes(5 * i), 40 + i as u8))
            .collect();
        let mut builder = ColumnarBuilder::default();
        for (i, s) in snaps.iter().enumerate() {
            builder.add_snapshot(i, s);
        }
        let store = ColumnarBuilder::finish(vec![builder]);
        let fingerprint = CorpusFingerprint {
            entries: (0u64..3)
                .map(|i| FingerprintEntry {
                    path: format!("europe/yaml/2022/02/01/00{:02}.yaml", 5 * i),
                    size: 100 + i,
                    hash: 7 * (i + 1),
                })
                .collect(),
        };
        let stats = CorpusLoadStats {
            files: 3,
            parsed: 3,
            bytes: 303,
            ..CorpusLoadStats::default()
        };
        let header = SegmentHeader {
            t_min: t0,
            t_max: t0 + Duration::from_minutes(10),
            entries: 3,
            snapshots: 3,
            meta_digest: fingerprint_identity(&fingerprint),
        };
        (header, store, fingerprint, stats)
    }

    #[test]
    fn segment_round_trip_is_exact() {
        let (header, store, fp, stats) = sample();
        let bytes = encode_segment(&header, &store, &fp, &stats);
        assert_eq!(decode_segment_header(&bytes).unwrap(), header);
        let (h2, s2, fp2, st2) = decode_segment(&bytes).unwrap();
        assert_eq!(h2, header);
        assert_eq!(s2, store);
        assert_eq!(fp2, fp);
        assert_eq!(st2, stats);
        // Deterministic: re-encoding the decoded slice is byte-identical.
        assert_eq!(encode_segment(&h2, &s2, &fp2, &st2), bytes);
    }

    #[test]
    fn damaged_segments_are_rejected() {
        let (header, store, fp, stats) = sample();
        let bytes = encode_segment(&header, &store, &fp, &stats);

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_segment(&bad_magic),
            Err(CacheError::BadMagic)
        ));

        let mut bad_version = bytes.clone();
        bad_version[8] = 0xAB;
        assert!(matches!(
            decode_segment(&bad_version),
            Err(CacheError::UnsupportedVersion(0xAB))
        ));

        let mut flipped_header = bytes.clone();
        flipped_header[20] ^= 0x01;
        assert!(matches!(
            decode_segment(&flipped_header),
            Err(CacheError::ChecksumMismatch { .. })
        ));

        let mut flipped_payload = bytes.clone();
        let last = flipped_payload.len() - 1;
        flipped_payload[last] ^= 0x01;
        assert!(decode_segment(&flipped_payload).is_err());

        for cut in [0, 4, 20, SEGMENT_HEADER_LEN, bytes.len() - 1] {
            assert!(
                decode_segment(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }

        // A valid payload under a header whose digest disagrees.
        let mut lying = header;
        lying.meta_digest ^= 1;
        let relabelled = encode_segment(&lying, &store, &fp, &stats);
        assert!(matches!(
            decode_segment(&relabelled),
            Err(CacheError::Invalid(_))
        ));
    }

    #[test]
    fn identity_digest_is_order_and_content_sensitive() {
        let a = identity_digest([("x", 1), ("y", 2)]);
        assert_eq!(a, identity_digest([("x", 1), ("y", 2)]));
        assert_ne!(a, identity_digest([("y", 2), ("x", 1)]));
        assert_ne!(a, identity_digest([("x", 2), ("y", 2)]));
        assert_ne!(a, identity_digest([("x", 1)]));
        let empty: [(&str, u64); 0] = [];
        assert_ne!(identity_digest(empty), 0);
    }
}
