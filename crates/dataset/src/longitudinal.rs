//! The columnar longitudinal store: two years of snapshots as time
//! series, not as isolated files.
//!
//! The paper's §5 treats the corpus longitudinally — evolution curves,
//! load distributions, upgrade forensics all scan every snapshot of a
//! map. Materialising a `Vec<TopologySnapshot>` per analysis re-parses
//! and re-allocates the same names and labels hundreds of thousands of
//! times. This module stores one map's history once, in columns:
//!
//! * **Symbol tables** — every distinct [`Node`] and every distinct
//!   canonical link identity get stable ids ([`NodeId`], [`LinkId`])
//!   assigned by *rank* in the sorted table, so ids depend only on the
//!   corpus content, never on discovery or thread order.
//! * **Columns** — per snapshot, the node-id list and the link rows
//!   (link id, per-direction loads, original orientation) in original
//!   snapshot order, laid out in flat arrays with offset tables.
//!   [`LongitudinalStore::snapshot`] reconstructs the original
//!   [`TopologySnapshot`] *exactly*, so every existing analysis runs
//!   unchanged on top of the store.
//! * **Per-link series** — an inverted index from [`LinkId`] to its
//!   rows, sorted by snapshot, giving [`LongitudinalStore::link_series`]
//!   without scanning the whole corpus.
//! * **Event log** — the structural [`wm_model::diff`] between each
//!   consecutive snapshot pair, computed once at build time instead of
//!   recomputed inside each analysis.
//!
//! The store is built by folding snapshots into per-worker
//! [`ColumnarBuilder`]s (a [`SnapshotSink`]) and merging them at join.
//! The merge sorts the symbol tables and orders rows by `(timestamp,
//! input index)`, so the result is byte-identical for any worker count
//! and either scheduling policy — the same contract as the extraction
//! batch runner.

use std::collections::{BTreeMap, BTreeSet};

use wm_extract::{
    extract_batch_sink, BatchInput, BatchMetrics, BatchStats, ExtractConfig, Scheduling,
    SnapshotSink,
};
use wm_model::{
    Link, LinkEnd, LinkKind, Load, MapKind, Node, NodeKind, SnapshotDiff, Timestamp,
    TopologySnapshot,
};

/// Stable identifier of a distinct node within one store.
///
/// Ids are the node's rank in the sorted node table: `NodeId(0)` is the
/// lexicographically smallest `(name, kind)` seen anywhere in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The id as an index into [`LongitudinalStore::nodes`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from its raw rank (cache deserialisation).
    pub(crate) fn from_raw(raw: u32) -> NodeId {
        NodeId(raw)
    }
}

/// Stable identifier of a distinct link identity within one store.
///
/// Ids are the identity's rank in the sorted [`LinkDef`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(u32);

impl LinkId {
    /// The id as an index into [`LongitudinalStore::link_defs`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The canonical identity of one drawn link across snapshots: the
/// endpoint pair ordered by `(name, kind, label)` plus the `#n` labels.
///
/// This mirrors the maintenance analysis' `LinkKey` convention: parallel
/// links are distinguished by label, and links whose labels collide (the
/// paper observes non-unique VODAFONE labels) share one identity — their
/// rows coexist per snapshot and their series interleave.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkDef {
    /// Canonically first endpoint.
    pub a: NodeId,
    /// Canonically second endpoint.
    pub b: NodeId,
    /// Label at the first endpoint, when drawn.
    pub label_a: Option<String>,
    /// Label at the second endpoint, when drawn.
    pub label_b: Option<String>,
}

/// One observation of a link in one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSample {
    /// Index of the snapshot (into [`LongitudinalStore::timestamps`]).
    pub snapshot: usize,
    /// The snapshot instant.
    pub timestamp: Timestamp,
    /// Egress load of the canonical first endpoint.
    pub load_a: Load,
    /// Egress load of the canonical second endpoint.
    pub load_b: Load,
}

impl LinkSample {
    /// `true` when the link read `0 %` in both directions — the
    /// weathermap's signature of a disabled link.
    #[must_use]
    pub fn disabled(&self) -> bool {
        self.load_a.is_disabled() && self.load_b.is_disabled()
    }
}

/// One entry of the topology event log: the structural change between
/// two consecutive snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyEvent {
    /// The older snapshot of the pair.
    pub previous: Timestamp,
    /// The newer snapshot — when the change was first observed.
    pub at: Timestamp,
    /// What changed (non-empty by construction).
    pub diff: SnapshotDiff,
}

/// A per-snapshot row still carrying builder-local ids.
#[derive(Debug, Clone, Copy)]
struct LocalRow {
    def: u32,
    load_a: u8,
    load_b: u8,
    /// `true` when the original link listed the canonical second
    /// endpoint first; preserved so reconstruction is exact.
    flipped: bool,
}

/// A snapshot accepted by a builder, awaiting the merge.
#[derive(Debug, Clone)]
struct PendingSnapshot {
    index: usize,
    map: MapKind,
    timestamp: Timestamp,
    nodes: Vec<u32>,
    rows: Vec<LocalRow>,
}

/// Builder-local link identity (node ids are builder-local too).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct LocalDef {
    a: u32,
    b: u32,
    label_a: Option<String>,
    label_b: Option<String>,
}

/// Per-worker accumulator that folds snapshots into columns.
///
/// Each worker interns nodes and link identities against its own local
/// tables (first-seen order); [`ColumnarBuilder::finish`] merges any
/// number of builders into one [`LongitudinalStore`], re-ranking all ids
/// against the global sorted tables. Because ranking depends only on the
/// set of values seen, the merged store is identical however the inputs
/// were split across builders.
#[derive(Debug, Default)]
pub struct ColumnarBuilder {
    nodes: Vec<Node>,
    node_ids: BTreeMap<Node, u32>,
    defs: Vec<LocalDef>,
    def_ids: BTreeMap<LocalDef, u32>,
    snaps: Vec<PendingSnapshot>,
}

/// The total order on link ends that fixes each link's canonical
/// orientation, independent of how the link was drawn.
fn end_key(end: &LinkEnd) -> (&str, NodeKind, Option<&str>) {
    (end.node.name.as_str(), end.node.kind, end.label.as_deref())
}

impl ColumnarBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ColumnarBuilder {
        ColumnarBuilder::default()
    }

    fn intern_node(&mut self, node: &Node) -> u32 {
        if let Some(&id) = self.node_ids.get(node) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(node.clone());
        self.node_ids.insert(node.clone(), id);
        id
    }

    fn intern_def(&mut self, def: LocalDef) -> u32 {
        if let Some(&id) = self.def_ids.get(&def) {
            return id;
        }
        let id = self.defs.len() as u32;
        self.defs.push(def.clone());
        self.def_ids.insert(def, id);
        id
    }

    /// Folds one snapshot (input position `index`) into the columns.
    pub fn add_snapshot(&mut self, index: usize, snapshot: &TopologySnapshot) {
        let nodes = snapshot
            .nodes
            .iter()
            .map(|node| self.intern_node(node))
            .collect();
        let rows = snapshot
            .links
            .iter()
            .map(|link| {
                let flipped = end_key(&link.b) < end_key(&link.a);
                let (first, second) = if flipped {
                    (&link.b, &link.a)
                } else {
                    (&link.a, &link.b)
                };
                let def = LocalDef {
                    a: self.intern_node(&first.node),
                    b: self.intern_node(&second.node),
                    label_a: first.label.clone(),
                    label_b: second.label.clone(),
                };
                LocalRow {
                    def: self.intern_def(def),
                    load_a: first.egress_load.percent(),
                    load_b: second.egress_load.percent(),
                    flipped,
                }
            })
            .collect();
        self.snaps.push(PendingSnapshot {
            index,
            map: snapshot.map,
            timestamp: snapshot.timestamp,
            nodes,
            rows,
        });
    }

    /// Merges per-worker builders into the final store.
    ///
    /// Ids become ranks in the globally sorted symbol tables and
    /// snapshots are ordered by `(timestamp, input index)`, so the
    /// result does not depend on how snapshots were distributed over
    /// builders.
    #[must_use]
    pub fn finish(builders: Vec<ColumnarBuilder>) -> LongitudinalStore {
        // Global node table: sorted distinct nodes; id = rank.
        let mut node_set: BTreeSet<Node> = BTreeSet::new();
        for builder in &builders {
            node_set.extend(builder.nodes.iter().cloned());
        }
        let nodes: Vec<Node> = node_set.into_iter().collect();
        let node_rank: BTreeMap<Node, u32> = nodes
            .iter()
            .enumerate()
            .map(|(rank, node)| (node.clone(), rank as u32))
            .collect();
        let node_maps: Vec<Vec<u32>> = builders
            .iter()
            .map(|builder| builder.nodes.iter().map(|node| node_rank[node]).collect())
            .collect();

        // Global link-identity table, same construction.
        let globalize = |def: &LocalDef, node_map: &[u32]| LinkDef {
            a: NodeId(node_map[def.a as usize]),
            b: NodeId(node_map[def.b as usize]),
            label_a: def.label_a.clone(),
            label_b: def.label_b.clone(),
        };
        let mut def_set: BTreeSet<LinkDef> = BTreeSet::new();
        for (builder, node_map) in builders.iter().zip(&node_maps) {
            def_set.extend(builder.defs.iter().map(|def| globalize(def, node_map)));
        }
        let defs: Vec<LinkDef> = def_set.into_iter().collect();
        let def_rank: BTreeMap<LinkDef, u32> = defs
            .iter()
            .enumerate()
            .map(|(rank, def)| (def.clone(), rank as u32))
            .collect();
        let def_maps: Vec<Vec<u32>> = builders
            .iter()
            .zip(&node_maps)
            .map(|(builder, node_map)| {
                builder
                    .defs
                    .iter()
                    .map(|def| def_rank[&globalize(def, node_map)])
                    .collect()
            })
            .collect();

        // Re-rank every pending snapshot, then order by (timestamp,
        // input index) — identical to the batch runner's output order.
        let mut snaps: Vec<PendingSnapshot> = Vec::new();
        for ((mut builder, node_map), def_map) in
            builders.into_iter().zip(&node_maps).zip(&def_maps)
        {
            for snap in &mut builder.snaps {
                for node in &mut snap.nodes {
                    *node = node_map[*node as usize];
                }
                for row in &mut snap.rows {
                    row.def = def_map[row.def as usize];
                }
            }
            snaps.append(&mut builder.snaps);
        }
        snaps.sort_by_key(|snap| (snap.timestamp, snap.index));

        // Flatten into columns.
        let mut store = LongitudinalStore {
            nodes,
            defs,
            timestamps: Vec::with_capacity(snaps.len()),
            maps: Vec::with_capacity(snaps.len()),
            node_offsets: vec![0],
            node_cells: Vec::new(),
            link_offsets: vec![0],
            link_cells: Vec::new(),
            load_a: Vec::new(),
            load_b: Vec::new(),
            flipped: Vec::new(),
            series_offsets: Vec::new(),
            series_rows: Vec::new(),
            events: Vec::new(),
        };
        for snap in &snaps {
            store.timestamps.push(snap.timestamp);
            store.maps.push(snap.map);
            store.node_cells.extend_from_slice(&snap.nodes);
            store.node_offsets.push(store.node_cells.len() as u32);
            for row in &snap.rows {
                store.link_cells.push(row.def);
                store.load_a.push(row.load_a);
                store.load_b.push(row.load_b);
                store.flipped.push(row.flipped);
            }
            store.link_offsets.push(store.link_cells.len() as u32);
        }

        store.rebuild_series_index();

        // Topology event log: one structural diff per consecutive pair.
        if !store.timestamps.is_empty() {
            let mut previous = store.snapshot(0);
            for i in 1..store.timestamps.len() {
                let current = store.snapshot(i);
                let diff = wm_model::diff(&previous, &current);
                if !diff.is_empty() {
                    store.events.push(TopologyEvent {
                        previous: previous.timestamp,
                        at: current.timestamp,
                        diff,
                    });
                }
                previous = current;
            }
        }
        store
    }
}

impl SnapshotSink for ColumnarBuilder {
    fn accept(&mut self, index: usize, snapshot: TopologySnapshot) {
        self.add_snapshot(index, &snapshot);
    }
}

/// One map's snapshot history in columnar form. See the module docs.
///
/// Fields are `pub(crate)` so the binary cache codec ([`crate::codec`])
/// can serialise and reconstruct the columns directly; outside this crate
/// the store is opaque behind its accessor methods.
#[derive(Debug, Clone, PartialEq)]
pub struct LongitudinalStore {
    pub(crate) nodes: Vec<Node>,
    pub(crate) defs: Vec<LinkDef>,
    pub(crate) timestamps: Vec<Timestamp>,
    pub(crate) maps: Vec<MapKind>,
    pub(crate) node_offsets: Vec<u32>,
    pub(crate) node_cells: Vec<u32>,
    pub(crate) link_offsets: Vec<u32>,
    pub(crate) link_cells: Vec<u32>,
    pub(crate) load_a: Vec<u8>,
    pub(crate) load_b: Vec<u8>,
    pub(crate) flipped: Vec<bool>,
    pub(crate) series_offsets: Vec<u32>,
    pub(crate) series_rows: Vec<u32>,
    pub(crate) events: Vec<TopologyEvent>,
}

impl LongitudinalStore {
    /// Builds a store from an in-memory snapshot sequence (serial
    /// convenience over [`ColumnarBuilder`]).
    #[must_use]
    pub fn from_snapshots<'a, I>(snapshots: I) -> LongitudinalStore
    where
        I: IntoIterator<Item = &'a TopologySnapshot>,
    {
        let mut builder = ColumnarBuilder::new();
        for (index, snapshot) in snapshots.into_iter().enumerate() {
            builder.add_snapshot(index, snapshot);
        }
        ColumnarBuilder::finish(vec![builder])
    }

    /// Number of snapshots stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// `true` when the store holds no snapshots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Snapshot instants, sorted ascending.
    #[must_use]
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.timestamps
    }

    /// The map of snapshot `index`.
    #[must_use]
    pub fn map_of(&self, index: usize) -> MapKind {
        self.maps[index]
    }

    /// The sorted table of distinct nodes; a node's position is its
    /// [`NodeId`].
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node behind an id.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The sorted table of distinct link identities; a definition's
    /// position is its [`LinkId`].
    #[must_use]
    pub fn link_defs(&self) -> &[LinkDef] {
        &self.defs
    }

    /// The link identity behind an id.
    #[must_use]
    pub fn link_def(&self, id: LinkId) -> &LinkDef {
        &self.defs[id.index()]
    }

    /// All link ids, in rank order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.defs.len() as u32).map(LinkId)
    }

    /// Internal when both endpoints are OVH routers, external otherwise.
    #[must_use]
    pub fn link_kind(&self, id: LinkId) -> LinkKind {
        let def = self.link_def(id);
        if self.node(def.a).is_router() && self.node(def.b).is_router() {
            LinkKind::Internal
        } else {
            LinkKind::External
        }
    }

    /// Total number of link observations (rows) across all snapshots.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.link_cells.len()
    }

    /// Reconstructs snapshot `index` exactly as it was stored: node and
    /// link order, end orientation, labels and loads all match the
    /// original [`TopologySnapshot`].
    #[must_use]
    pub fn snapshot(&self, index: usize) -> TopologySnapshot {
        let mut snapshot = TopologySnapshot::new(self.maps[index], self.timestamps[index]);
        let nodes = self.node_offsets[index] as usize..self.node_offsets[index + 1] as usize;
        snapshot.nodes = self.node_cells[nodes]
            .iter()
            .map(|&id| self.nodes[id as usize].clone())
            .collect();
        let rows = self.link_offsets[index] as usize..self.link_offsets[index + 1] as usize;
        snapshot.links = rows
            .map(|row| {
                let def = &self.defs[self.link_cells[row] as usize];
                let first = LinkEnd::new(
                    self.nodes[def.a.index()].clone(),
                    def.label_a.clone(),
                    Load::new(self.load_a[row]).expect("stored load valid"),
                );
                let second = LinkEnd::new(
                    self.nodes[def.b.index()].clone(),
                    def.label_b.clone(),
                    Load::new(self.load_b[row]).expect("stored load valid"),
                );
                if self.flipped[row] {
                    Link::new(second, first)
                } else {
                    Link::new(first, second)
                }
            })
            .collect();
        snapshot
    }

    /// Iterates over all snapshots in timestamp order, reconstructing
    /// each one on the fly.
    pub fn snapshots(&self) -> impl Iterator<Item = TopologySnapshot> + '_ {
        (0..self.len()).map(|index| self.snapshot(index))
    }

    /// The load time series of one link, sorted by snapshot.
    ///
    /// Links sharing a canonical identity (label collisions) contribute
    /// one sample each per snapshot they appear in.
    #[must_use]
    pub fn link_series(&self, id: LinkId) -> Vec<LinkSample> {
        let span =
            self.series_offsets[id.index()] as usize..self.series_offsets[id.index() + 1] as usize;
        self.series_rows[span]
            .iter()
            .map(|&row| {
                let row = row as usize;
                // The snapshot owning `row`: offsets are non-decreasing
                // (duplicates where a snapshot has no links), so count
                // how many snapshot starts are at or before the row.
                let snapshot = self
                    .link_offsets
                    .partition_point(|&offset| offset as usize <= row)
                    - 1;
                LinkSample {
                    snapshot,
                    timestamp: self.timestamps[snapshot],
                    load_a: Load::new(self.load_a[row]).expect("stored load valid"),
                    load_b: Load::new(self.load_b[row]).expect("stored load valid"),
                }
            })
            .collect()
    }

    /// The topology event log: the non-empty structural diffs between
    /// consecutive snapshots, computed once at build time.
    #[must_use]
    pub fn events(&self) -> &[TopologyEvent] {
        &self.events
    }

    /// Rebuilds the inverted link-series index from the link columns by
    /// counting sort (rows are visited in snapshot order, so each link's
    /// slice stays sorted). Deterministic: depends only on the columns.
    pub(crate) fn rebuild_series_index(&mut self) {
        let mut offsets = vec![0u32; self.defs.len() + 1];
        for &def in &self.link_cells {
            offsets[def as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursors = offsets.clone();
        let mut series_rows = vec![0u32; self.link_cells.len()];
        for (row, &def) in self.link_cells.iter().enumerate() {
            series_rows[cursors[def as usize] as usize] = row as u32;
            cursors[def as usize] += 1;
        }
        self.series_offsets = offsets;
        self.series_rows = series_rows;
    }

    /// Appends a tail of newer snapshots to the store, producing exactly
    /// what a full rebuild over `old corpus + tail` would produce.
    ///
    /// All appended timestamps must be strictly greater than the last
    /// stored timestamp and non-decreasing among themselves (the order of
    /// equal-timestamp snapshots in `snapshots` is preserved, matching the
    /// batch runner's `(timestamp, input index)` contract). Symbol-table
    /// ids are ranks in the *merged* sorted tables, so appending re-ranks
    /// the existing columns where the tail introduces nodes or link
    /// identities that sort before existing ones; the result is identical
    /// to [`LongitudinalStore::from_snapshots`] over the concatenation.
    ///
    /// # Panics
    ///
    /// Panics if a tail timestamp is not strictly newer than the stored
    /// history — callers (the cache-aware loader) establish this from the
    /// corpus fingerprint before calling.
    pub fn append_snapshots(&mut self, snapshots: &[TopologySnapshot]) {
        if snapshots.is_empty() {
            return;
        }
        if let Some(&last) = self.timestamps.last() {
            assert!(
                snapshots.iter().all(|s| s.timestamp > last),
                "appended snapshots must be strictly newer than the stored history"
            );
        }

        let mut builder = ColumnarBuilder::new();
        for (index, snapshot) in snapshots.iter().enumerate() {
            builder.add_snapshot(index, snapshot);
        }

        // Merged node table and the two rank maps (old ids, builder ids).
        let mut node_set: BTreeSet<Node> = self.nodes.iter().cloned().collect();
        node_set.extend(builder.nodes.iter().cloned());
        let nodes: Vec<Node> = node_set.into_iter().collect();
        let node_rank: BTreeMap<Node, u32> = nodes
            .iter()
            .enumerate()
            .map(|(rank, node)| (node.clone(), rank as u32))
            .collect();
        let old_node_map: Vec<u32> = self.nodes.iter().map(|n| node_rank[n]).collect();
        let new_node_map: Vec<u32> = builder.nodes.iter().map(|n| node_rank[n]).collect();

        // Merged link-identity table, with old defs re-ranked first.
        let remapped_old: Vec<LinkDef> = self
            .defs
            .iter()
            .map(|def| LinkDef {
                a: NodeId(old_node_map[def.a.index()]),
                b: NodeId(old_node_map[def.b.index()]),
                label_a: def.label_a.clone(),
                label_b: def.label_b.clone(),
            })
            .collect();
        let globalize = |def: &LocalDef| LinkDef {
            a: NodeId(new_node_map[def.a as usize]),
            b: NodeId(new_node_map[def.b as usize]),
            label_a: def.label_a.clone(),
            label_b: def.label_b.clone(),
        };
        let mut def_set: BTreeSet<LinkDef> = remapped_old.iter().cloned().collect();
        def_set.extend(builder.defs.iter().map(globalize));
        let defs: Vec<LinkDef> = def_set.into_iter().collect();
        let def_rank: BTreeMap<LinkDef, u32> = defs
            .iter()
            .enumerate()
            .map(|(rank, def)| (def.clone(), rank as u32))
            .collect();
        let old_def_map: Vec<u32> = remapped_old.iter().map(|def| def_rank[def]).collect();
        let new_def_map: Vec<u32> = builder
            .defs
            .iter()
            .map(|def| def_rank[&globalize(def)])
            .collect();

        // Re-rank the existing columns in place, then install the tables.
        for cell in &mut self.node_cells {
            *cell = old_node_map[*cell as usize];
        }
        for cell in &mut self.link_cells {
            *cell = old_def_map[*cell as usize];
        }
        self.nodes = nodes;
        self.defs = defs;

        // The boundary snapshot for the event log, reconstructed after the
        // re-rank (the tables are consistent again at this point).
        let old_len = self.timestamps.len();
        let mut previous = (old_len > 0).then(|| self.snapshot(old_len - 1));

        // Append the tail columns in (timestamp, input index) order.
        let mut snaps = std::mem::take(&mut builder.snaps);
        snaps.sort_by_key(|snap| (snap.timestamp, snap.index));
        for snap in &snaps {
            self.timestamps.push(snap.timestamp);
            self.maps.push(snap.map);
            self.node_cells
                .extend(snap.nodes.iter().map(|&id| new_node_map[id as usize]));
            self.node_offsets.push(self.node_cells.len() as u32);
            for row in &snap.rows {
                self.link_cells.push(new_def_map[row.def as usize]);
                self.load_a.push(row.load_a);
                self.load_b.push(row.load_b);
                self.flipped.push(row.flipped);
            }
            self.link_offsets.push(self.link_cells.len() as u32);
        }

        // Event log: the boundary pair plus each consecutive tail pair.
        for index in old_len..self.timestamps.len() {
            let current = self.snapshot(index);
            if let Some(prev) = &previous {
                let diff = wm_model::diff(prev, &current);
                if !diff.is_empty() {
                    self.events.push(TopologyEvent {
                        previous: prev.timestamp,
                        at: current.timestamp,
                        diff,
                    });
                }
            }
            previous = Some(current);
        }

        self.rebuild_series_index();
    }

    /// Approximate resident size of the columns and tables, in bytes
    /// (cell payloads only; allocator overhead and the event log's
    /// string contents are estimated, not measured).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes
            .iter()
            .map(|n| n.name.len() + size_of::<Node>())
            .sum::<usize>()
            + self
                .defs
                .iter()
                .map(|d| {
                    size_of::<LinkDef>()
                        + d.label_a.as_deref().map_or(0, str::len)
                        + d.label_b.as_deref().map_or(0, str::len)
                })
                .sum::<usize>()
            + self.timestamps.len() * size_of::<Timestamp>()
            + self.maps.len() * size_of::<MapKind>()
            + (self.node_offsets.len() + self.node_cells.len()) * size_of::<u32>()
            + (self.link_offsets.len() + self.link_cells.len()) * size_of::<u32>()
            + self.load_a.len()
            + self.load_b.len()
            + self.flipped.len()
            + (self.series_offsets.len() + self.series_rows.len()) * size_of::<u32>()
            + self.events.len() * size_of::<TopologyEvent>()
    }
}

/// Extracts a batch of SVG files straight into a [`LongitudinalStore`]
/// in one streaming pass — snapshots flow from the extraction workers
/// into per-worker [`ColumnarBuilder`]s without ever materialising a
/// `Vec<TopologySnapshot>`.
///
/// Determinism: inherits the batch runner's contract, so the store (and
/// the stats' counters) are byte-identical for any `threads` value and
/// either scheduling policy.
#[must_use]
pub fn extract_longitudinal(
    inputs: &[BatchInput],
    map: MapKind,
    config: &ExtractConfig,
    threads: usize,
    scheduling: Scheduling,
) -> (LongitudinalStore, BatchStats, BatchMetrics) {
    let (builders, stats, metrics) =
        extract_batch_sink::<ColumnarBuilder>(inputs, map, config, threads, scheduling);
    (ColumnarBuilder::finish(builders), stats, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_model::Duration;

    fn load(p: u8) -> Load {
        Load::new(p).unwrap()
    }

    fn link(a: &str, la: u8, b: &str, lb: u8, label: Option<&str>) -> Link {
        Link::new(
            LinkEnd::new(Node::from_name(a), label.map(str::to_owned), load(la)),
            LinkEnd::new(Node::from_name(b), label.map(str::to_owned), load(lb)),
        )
    }

    /// A three-snapshot series with parallel links, a flipped end order,
    /// a peering, a disabled stretch and a topology change.
    fn series() -> Vec<TopologySnapshot> {
        let t0 = Timestamp::from_ymd(2021, 6, 1);
        let mut s0 = TopologySnapshot::new(MapKind::Europe, t0);
        s0.nodes = vec![
            Node::from_name("rbx-g1"),
            Node::from_name("fra-fr5"),
            Node::from_name("ARELION"),
        ];
        s0.links = vec![
            link("rbx-g1", 10, "fra-fr5", 20, Some("#1")),
            // Ends listed in reverse name order: must survive round-trip.
            link("rbx-g1", 12, "fra-fr5", 22, Some("#2")),
            link("fra-fr5", 42, "ARELION", 9, None),
        ];

        let mut s1 = s0.clone();
        s1.timestamp = t0 + Duration::from_minutes(5);
        s1.links[0] = link("rbx-g1", 0, "fra-fr5", 0, Some("#1"));

        let mut s2 = s1.clone();
        s2.timestamp = t0 + Duration::from_minutes(10);
        s2.links[0] = link("rbx-g1", 11, "fra-fr5", 21, Some("#1"));
        s2.nodes.push(Node::from_name("sbg-g2"));
        s2.links.push(link("sbg-g2", 7, "rbx-g1", 8, None));
        vec![s0, s1, s2]
    }

    #[test]
    fn ids_are_sorted_ranks() {
        let snaps = series();
        let store = LongitudinalStore::from_snapshots(&snaps);
        let names: Vec<&str> = store.nodes().iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["ARELION", "fra-fr5", "rbx-g1", "sbg-g2"]);
        assert!(store.link_defs().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(store.link_defs().len(), 4);
        assert_eq!(store.observations(), 10);
    }

    #[test]
    fn snapshot_reconstruction_is_exact() {
        let snaps = series();
        let store = LongitudinalStore::from_snapshots(&snaps);
        assert_eq!(store.len(), snaps.len());
        for (i, original) in snaps.iter().enumerate() {
            assert_eq!(&store.snapshot(i), original, "snapshot {i} round trip");
        }
        let collected: Vec<TopologySnapshot> = store.snapshots().collect();
        assert_eq!(collected, snaps);
    }

    #[test]
    fn merge_is_split_invariant() {
        let snaps = series();
        let whole = LongitudinalStore::from_snapshots(&snaps);

        // Same snapshots, split across workers in scrambled claim order.
        let mut b0 = ColumnarBuilder::new();
        let mut b1 = ColumnarBuilder::new();
        b1.add_snapshot(2, &snaps[2]);
        b0.add_snapshot(1, &snaps[1]);
        b1.add_snapshot(0, &snaps[0]);
        let split = ColumnarBuilder::finish(vec![b0, b1]);
        assert_eq!(whole, split);
    }

    #[test]
    fn link_series_is_sorted_and_complete() {
        let snaps = series();
        let store = LongitudinalStore::from_snapshots(&snaps);
        let total: usize = store.link_ids().map(|id| store.link_series(id).len()).sum();
        assert_eq!(total, store.observations());
        for id in store.link_ids() {
            let samples = store.link_series(id);
            assert!(samples.windows(2).all(|w| w[0].snapshot < w[1].snapshot));
            for sample in &samples {
                assert_eq!(sample.timestamp, store.timestamps()[sample.snapshot]);
            }
        }
        // The #1 parallel link was disabled in snapshot 1 only.
        let disabled: Vec<LinkId> = store
            .link_ids()
            .filter(|&id| store.link_series(id).iter().any(|s| s.disabled()))
            .collect();
        assert_eq!(disabled.len(), 1);
        let samples = store.link_series(disabled[0]);
        assert_eq!(samples.len(), 3);
        assert!(!samples[0].disabled() && samples[1].disabled() && !samples[2].disabled());
    }

    #[test]
    fn event_log_matches_pairwise_diff() {
        let snaps = series();
        let store = LongitudinalStore::from_snapshots(&snaps);
        // s0 -> s1 changes only loads; s1 -> s2 adds a node and a group.
        assert_eq!(store.events().len(), 1);
        let event = &store.events()[0];
        assert_eq!(event.previous, snaps[1].timestamp);
        assert_eq!(event.at, snaps[2].timestamp);
        assert_eq!(event.diff, wm_model::diff(&snaps[1], &snaps[2]));
        assert_eq!(event.diff.added_nodes, vec![Node::from_name("sbg-g2")]);
        assert_eq!(event.diff.link_delta(), 1);
    }

    #[test]
    fn append_matches_full_rebuild() {
        let mut snaps = series();
        // A tail snapshot that introduces a node sorting *before* every
        // existing one, forcing the append to re-rank old columns.
        let mut s3 = snaps[2].clone();
        s3.timestamp = snaps[2].timestamp + Duration::from_minutes(5);
        s3.nodes.push(Node::from_name("AAA-PEER"));
        s3.links.push(link("rbx-g1", 3, "AAA-PEER", 4, None));
        snaps.push(s3);

        for split in 0..=snaps.len() {
            let full = LongitudinalStore::from_snapshots(&snaps);
            let mut grown = LongitudinalStore::from_snapshots(&snaps[..split]);
            grown.append_snapshots(&snaps[split..]);
            assert_eq!(grown, full, "append after {split} stored snapshots");
        }
    }

    #[test]
    #[should_panic(expected = "strictly newer")]
    fn append_rejects_stale_timestamps() {
        let snaps = series();
        let mut store = LongitudinalStore::from_snapshots(&snaps);
        store.append_snapshots(&[snaps[0].clone()]);
    }

    #[test]
    fn empty_store() {
        let store = LongitudinalStore::from_snapshots(std::iter::empty());
        assert!(store.is_empty());
        assert_eq!(store.len(), 0);
        assert!(store.events().is_empty());
        assert_eq!(store.observations(), 0);
        assert!(store.approx_bytes() > 0); // offset sentinels
    }
}
