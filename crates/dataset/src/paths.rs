//! The on-disk path codec.
//!
//! The corpus mirrors the real dataset's organisation: one tree per map
//! and file type, sharded by date so no directory holds more than a day's
//! 288 snapshots:
//!
//! ```text
//! <root>/<map-slug>/<kind>/<YYYY>/<MM>/<DD>/<HHMM>.<ext>
//! e.g.   europe/svg/2021/03/05/1005.svg
//! ```
//!
//! The timestamp is fully recoverable from the path — the extraction
//! pipeline derives each snapshot's instant from its location, exactly as
//! the paper's wrapper scripts do.

use std::path::{Path, PathBuf};

use wm_model::{MapKind, Timestamp};

/// Which artefact a file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FileKind {
    /// A collected SVG snapshot.
    Svg,
    /// A processed YAML snapshot.
    Yaml,
}

impl FileKind {
    /// Directory name and file extension.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FileKind::Svg => "svg",
            FileKind::Yaml => "yaml",
        }
    }

    /// Both kinds.
    pub const ALL: [FileKind; 2] = [FileKind::Svg, FileKind::Yaml];
}

/// Builds the relative path of a snapshot file.
#[must_use]
pub fn relative_path(map: MapKind, kind: FileKind, t: Timestamp) -> PathBuf {
    let c = t.civil();
    PathBuf::from(map.slug())
        .join(kind.as_str())
        .join(format!("{:04}", c.year))
        .join(format!("{:02}", c.month))
        .join(format!("{:02}", c.day))
        .join(format!("{:02}{:02}.{}", c.hour, c.minute, kind.as_str()))
}

/// Recovers `(map, kind, timestamp)` from a relative path, or `None` when
/// the path does not follow the layout.
#[must_use]
pub fn parse_path(path: &Path) -> Option<(MapKind, FileKind, Timestamp)> {
    let parts: Vec<&str> = path.iter().map(|c| c.to_str()).collect::<Option<_>>()?;
    let [map, kind, year, month, day, file] = parts.as_slice() else {
        return None;
    };
    let map: MapKind = map.parse().ok()?;
    let kind = match *kind {
        "svg" => FileKind::Svg,
        "yaml" => FileKind::Yaml,
        _ => return None,
    };
    let (stem, ext) = file.split_once('.')?;
    if ext != kind.as_str() || stem.len() != 4 {
        return None;
    }
    let year: i32 = year.parse().ok()?;
    let month: u8 = month.parse().ok()?;
    let day: u8 = day.parse().ok()?;
    let hour: u8 = stem[..2].parse().ok()?;
    let minute: u8 = stem[2..].parse().ok()?;
    // Validate ranges by round-tripping through the ISO form.
    let iso = format!("{year:04}-{month:02}-{day:02}T{hour:02}:{minute:02}:00Z");
    let t = Timestamp::parse_iso8601(&iso).ok()?;
    Some((map, kind, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_round_trip() {
        let t = Timestamp::from_ymd_hms(2021, 3, 5, 10, 5, 0);
        for map in MapKind::ALL {
            for kind in FileKind::ALL {
                let p = relative_path(map, kind, t);
                let (m, k, ts) = parse_path(&p).expect("parses back");
                assert_eq!((m, k, ts), (map, kind, t), "{p:?}");
            }
        }
    }

    #[test]
    fn example_path_shape() {
        let t = Timestamp::from_ymd_hms(2021, 3, 5, 10, 5, 0);
        let p = relative_path(MapKind::Europe, FileKind::Svg, t);
        assert_eq!(p, PathBuf::from("europe/svg/2021/03/05/1005.svg"));
    }

    #[test]
    fn seconds_are_dropped_by_design() {
        // Snapshots sit on the 5-minute grid; seconds never appear.
        let t = Timestamp::from_ymd_hms(2021, 3, 5, 10, 5, 30);
        let p = relative_path(MapKind::Europe, FileKind::Svg, t);
        let (_, _, ts) = parse_path(&p).unwrap();
        assert_eq!(ts, Timestamp::from_ymd_hms(2021, 3, 5, 10, 5, 0));
    }

    #[test]
    fn malformed_paths_rejected() {
        for bad in [
            "europe/svg/2021/03/05/1005.yaml", // extension mismatch
            "europe/png/2021/03/05/1005.png",  // unknown kind
            "mars/svg/2021/03/05/1005.svg",    // unknown map
            "europe/svg/2021/13/05/1005.svg",  // bad month
            "europe/svg/2021/03/05/2505.svg",  // bad hour
            "europe/svg/2021/03/1005.svg",     // missing component
            "europe/svg/2021/03/05/105.svg",   // short stem
        ] {
            assert!(
                parse_path(Path::new(bad)).is_none(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn cache_and_backup_files_are_rejected() {
        // The longitudinal cache and common editor droppings must never
        // parse as corpus members, whatever directory they land in.
        for bad in [
            "europe/.longitudinal.cache",
            "europe/.longitudinal.cache.tmp",
            "europe/yaml/2021/03/05/1005.yaml~",
            "europe/yaml/2021/03/05/.1005.yaml.swp",
            "europe/yaml/2021/03/05/1005.yaml.bak",
            "europe/yaml/2021/03/05/#1005.yaml#",
        ] {
            assert!(
                parse_path(Path::new(bad)).is_none(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn leap_day_paths_parse() {
        let p = Path::new("europe/svg/2020/02/29/0000.svg");
        assert!(parse_path(p).is_some());
        let p = Path::new("europe/svg/2021/02/29/0000.svg");
        assert!(parse_path(p).is_none());
    }
}
