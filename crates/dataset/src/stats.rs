//! Corpus statistics — the numbers behind Table 2.

use std::collections::BTreeMap;

use wm_model::MapKind;

use crate::paths::FileKind;
use crate::store::DatasetEntry;

/// File count and cumulative size of one `(map, kind)` cell of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellStats {
    /// Number of files.
    pub files: usize,
    /// Total size in bytes.
    pub bytes: u64,
}

impl CellStats {
    /// Total size in GiB (the unit Table 2 reports).
    #[must_use]
    pub fn gib(&self) -> f64 {
        self.bytes as f64 / (1024.0 * 1024.0 * 1024.0)
    }
}

/// The per-map, per-kind statistics of a corpus.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorpusStats {
    cells: BTreeMap<(MapKind, FileKind), CellStats>,
}

impl CorpusStats {
    /// Aggregates entry metadata into Table 2 cells.
    #[must_use]
    pub fn from_entries(entries: &[DatasetEntry]) -> CorpusStats {
        let mut stats = CorpusStats::default();
        for entry in entries {
            let cell = stats.cells.entry((entry.map, entry.kind)).or_default();
            cell.files += 1;
            cell.bytes += entry.size;
        }
        stats
    }

    /// The cell of one map and kind.
    #[must_use]
    pub fn cell(&self, map: MapKind, kind: FileKind) -> CellStats {
        self.cells.get(&(map, kind)).copied().unwrap_or_default()
    }

    /// The totals row: sums across maps for one kind.
    #[must_use]
    pub fn total(&self, kind: FileKind) -> CellStats {
        let mut total = CellStats::default();
        for ((_, k), cell) in &self.cells {
            if *k == kind {
                total.files += cell.files;
                total.bytes += cell.bytes;
            }
        }
        total
    }

    /// Renders the Table 2 layout: one row per map, SVG and YAML columns,
    /// plus the totals row.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<15} {:>10} {:>12} {:>10} {:>12}\n",
            "Network Map", "SVG files", "SVG GiB", "YAML files", "YAML GiB"
        ));
        for map in MapKind::ALL {
            let svg = self.cell(map, FileKind::Svg);
            let yaml = self.cell(map, FileKind::Yaml);
            out.push_str(&format!(
                "{:<15} {:>10} {:>12.3} {:>10} {:>12.3}\n",
                map.display_name(),
                svg.files,
                svg.gib(),
                yaml.files,
                yaml.gib()
            ));
        }
        let svg = self.total(FileKind::Svg);
        let yaml = self.total(FileKind::Yaml);
        out.push_str(&format!(
            "{:<15} {:>10} {:>12.3} {:>10} {:>12.3}\n",
            "Total",
            svg.files,
            svg.gib(),
            yaml.files,
            yaml.gib()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_model::Timestamp;

    fn entry(map: MapKind, kind: FileKind, size: u64, minute: i64) -> DatasetEntry {
        DatasetEntry {
            map,
            kind,
            timestamp: Timestamp::from_unix(minute * 60),
            size,
        }
    }

    #[test]
    fn aggregation_per_cell() {
        let entries = vec![
            entry(MapKind::Europe, FileKind::Svg, 1000, 0),
            entry(MapKind::Europe, FileKind::Svg, 2000, 5),
            entry(MapKind::Europe, FileKind::Yaml, 100, 0),
            entry(MapKind::World, FileKind::Svg, 500, 0),
        ];
        let stats = CorpusStats::from_entries(&entries);
        assert_eq!(
            stats.cell(MapKind::Europe, FileKind::Svg),
            CellStats {
                files: 2,
                bytes: 3000
            }
        );
        assert_eq!(
            stats.cell(MapKind::Europe, FileKind::Yaml),
            CellStats {
                files: 1,
                bytes: 100
            }
        );
        assert_eq!(
            stats.cell(MapKind::World, FileKind::Yaml),
            CellStats::default()
        );
        assert_eq!(
            stats.total(FileKind::Svg),
            CellStats {
                files: 3,
                bytes: 3500
            }
        );
    }

    #[test]
    fn gib_conversion() {
        let cell = CellStats {
            files: 1,
            bytes: 1024 * 1024 * 1024,
        };
        assert!((cell.gib() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_rendering_has_all_rows() {
        let entries = vec![entry(MapKind::Europe, FileKind::Svg, 1024, 0)];
        let table = CorpusStats::from_entries(&entries).render_table();
        for map in MapKind::ALL {
            assert!(table.contains(map.display_name()), "{table}");
        }
        assert!(table.contains("Total"));
        assert_eq!(table.lines().count(), 6);
    }
}
