//! The corpus store: writing, reading and enumerating snapshot files.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use wm_model::{MapKind, Timestamp};

use crate::paths::{parse_path, relative_path, FileKind};

/// A corpus rooted at one directory.
///
/// The store is deliberately plain — files on disk in a documented layout,
/// no database — matching how the real dataset is distributed (a tree of
/// SVG and YAML files plus wrapper scripts).
#[derive(Debug, Clone)]
pub struct DatasetStore {
    root: PathBuf,
}

/// One enumerated corpus file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetEntry {
    /// Which map.
    pub map: MapKind,
    /// SVG or YAML.
    pub kind: FileKind,
    /// The snapshot instant, recovered from the path.
    pub timestamp: Timestamp,
    /// Size in bytes.
    pub size: u64,
}

impl DatasetStore {
    /// Opens (or prepares to populate) a corpus rooted at `root`.
    ///
    /// The directory is created if missing.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<DatasetStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DatasetStore { root })
    }

    /// Opens a corpus that must already exist at `root`.
    ///
    /// Read-only consumers (analyses, stats, re-extraction) want a typo'd
    /// path to fail loudly, not to silently create an empty tree and
    /// report an empty corpus — use this instead of [`DatasetStore::open`]
    /// whenever the caller does not intend to write.
    pub fn open_existing(root: impl Into<PathBuf>) -> io::Result<DatasetStore> {
        let root = root.into();
        if root.is_dir() {
            Ok(DatasetStore { root })
        } else {
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "corpus root {} is not a directory (DatasetStore::open creates one for writing)",
                    root.display()
                ),
            ))
        }
    }

    /// The root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Absolute path of a snapshot file.
    #[must_use]
    pub fn path_of(&self, map: MapKind, kind: FileKind, t: Timestamp) -> PathBuf {
        self.root.join(relative_path(map, kind, t))
    }

    /// Writes a snapshot file, creating date directories as needed.
    pub fn write(
        &self,
        map: MapKind,
        kind: FileKind,
        t: Timestamp,
        contents: &[u8],
    ) -> io::Result<()> {
        let path = self.path_of(map, kind, t);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, contents)
    }

    /// Reads a snapshot file.
    pub fn read(&self, map: MapKind, kind: FileKind, t: Timestamp) -> io::Result<Vec<u8>> {
        fs::read(self.path_of(map, kind, t))
    }

    /// Whether a snapshot file exists.
    #[must_use]
    pub fn contains(&self, map: MapKind, kind: FileKind, t: Timestamp) -> bool {
        self.path_of(map, kind, t).is_file()
    }

    /// Enumerates all well-formed corpus files, sorted by `(map, kind,
    /// timestamp)`.
    ///
    /// Files whose paths do not follow the layout are ignored (the store
    /// never treats foreign files as corpus members).
    pub fn entries(&self) -> io::Result<Vec<DatasetEntry>> {
        let mut out = Vec::new();
        self.walk(&self.root, &mut out)?;
        out.sort_by_key(|e| (e.map, e.kind, e.timestamp));
        Ok(out)
    }

    /// Enumerates the entries of one map and kind, sorted by timestamp.
    pub fn entries_of(&self, map: MapKind, kind: FileKind) -> io::Result<Vec<DatasetEntry>> {
        let mut entries: Vec<DatasetEntry> = self
            .entries()?
            .into_iter()
            .filter(|e| e.map == map && e.kind == kind)
            .collect();
        entries.sort_by_key(|e| e.timestamp);
        Ok(entries)
    }

    /// Absolute path of one map's longitudinal cache file.
    ///
    /// The name is dot-prefixed and two path components deep, so it can
    /// never collide with the snapshot layout and [`Self::entries`]
    /// never surfaces it as a corpus member.
    #[must_use]
    pub fn cache_path(&self, map: MapKind) -> PathBuf {
        self.root.join(map.slug()).join(".longitudinal.cache")
    }

    /// Writes one map's longitudinal cache image, replacing any previous
    /// one. The write goes through a temporary sibling plus rename, so a
    /// crash mid-write leaves either the old cache or none — never a
    /// torn file presented as current.
    pub fn write_cache(&self, map: MapKind, bytes: &[u8]) -> io::Result<()> {
        let path = self.cache_path(map);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_file_name(".longitudinal.cache.tmp");
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)
    }

    /// Reads one map's longitudinal cache image as raw bytes.
    ///
    /// Returns `Ok(None)` when no cache exists; decoding (and deciding
    /// whether the bytes are trustworthy) is [`crate::codec`]'s job.
    pub fn open_cache(&self, map: MapKind) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.cache_path(map)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(err) => Err(err),
        }
    }

    /// Deletes one map's cache file if present (used by forced rebuilds).
    pub fn remove_cache(&self, map: MapKind) -> io::Result<()> {
        match fs::remove_file(self.cache_path(map)) {
            Ok(()) => Ok(()),
            Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(err) => Err(err),
        }
    }

    /// Directory holding one map's segment files and manifest.
    ///
    /// Dot-prefixed like the monolithic cache, so nothing under it can
    /// ever surface from [`Self::entries`].
    #[must_use]
    pub fn segments_dir(&self, map: MapKind) -> PathBuf {
        self.root.join(map.slug()).join(".segments")
    }

    /// Absolute path of one map's segment manifest.
    #[must_use]
    pub fn manifest_path(&self, map: MapKind) -> PathBuf {
        self.segments_dir(map).join("manifest")
    }

    /// Absolute path of one named segment file.
    #[must_use]
    pub fn segment_path(&self, map: MapKind, name: &str) -> PathBuf {
        self.segments_dir(map).join(name)
    }

    /// Writes one segment file atomically (temporary sibling + rename).
    pub fn write_segment_file(&self, map: MapKind, name: &str, bytes: &[u8]) -> io::Result<()> {
        let path = self.segment_path(map, name);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_file_name(format!("{name}.tmp"));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)
    }

    /// Reads one segment file; `Ok(None)` when it does not exist.
    pub fn read_segment_file(&self, map: MapKind, name: &str) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.segment_path(map, name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(err) => Err(err),
        }
    }

    /// Deletes one segment file if present.
    pub fn remove_segment_file(&self, map: MapKind, name: &str) -> io::Result<()> {
        match fs::remove_file(self.segment_path(map, name)) {
            Ok(()) => Ok(()),
            Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(err) => Err(err),
        }
    }

    /// Writes one map's segment manifest atomically.
    pub fn write_manifest_bytes(&self, map: MapKind, bytes: &[u8]) -> io::Result<()> {
        let path = self.manifest_path(map);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_file_name("manifest.tmp");
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)
    }

    /// Reads one map's segment manifest; `Ok(None)` when absent.
    pub fn read_manifest_bytes(&self, map: MapKind) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.manifest_path(map)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(err) => Err(err),
        }
    }

    /// Names of the segment files present on disk (`seg-*.seg`), sorted.
    ///
    /// Used to garbage-collect files a rewritten manifest no longer
    /// references and to recover a manifest from segment headers.
    pub fn list_segment_files(&self, map: MapKind) -> io::Result<Vec<String>> {
        let dir = self.segments_dir(map);
        if !dir.is_dir() {
            return Ok(Vec::new());
        }
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if name.starts_with("seg-") && name.ends_with(".seg") {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Removes one map's whole segment directory (forced reindex).
    pub fn remove_segments(&self, map: MapKind) -> io::Result<()> {
        match fs::remove_dir_all(self.segments_dir(map)) {
            Ok(()) => Ok(()),
            Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(err) => Err(err),
        }
    }

    fn walk(&self, dir: &Path, out: &mut Vec<DatasetEntry>) -> io::Result<()> {
        if !dir.is_dir() {
            return Ok(());
        }
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            // Dot-prefixed names (the cache file, editor droppings) are
            // never corpus members; skip them before any path parsing.
            if entry.file_name().to_string_lossy().starts_with('.') {
                continue;
            }
            if path.is_dir() {
                self.walk(&path, out)?;
            } else if let Ok(relative) = path.strip_prefix(&self.root) {
                if let Some((map, kind, timestamp)) = parse_path(relative) {
                    out.push(DatasetEntry {
                        map,
                        kind,
                        timestamp,
                        size: entry.metadata()?.len(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> DatasetStore {
        let dir =
            std::env::temp_dir().join(format!("wm-dataset-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DatasetStore::open(dir).expect("temp store")
    }

    #[test]
    fn write_read_round_trip() {
        let store = temp_store("rw");
        let t = Timestamp::from_ymd_hms(2021, 3, 5, 10, 5, 0);
        store
            .write(MapKind::Europe, FileKind::Svg, t, b"<svg/>")
            .unwrap();
        assert!(store.contains(MapKind::Europe, FileKind::Svg, t));
        let bytes = store.read(MapKind::Europe, FileKind::Svg, t).unwrap();
        assert_eq!(&bytes[..], b"<svg/>");
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn entries_enumerate_and_sort() {
        let store = temp_store("enum");
        let base = Timestamp::from_ymd_hms(2021, 3, 5, 10, 0, 0);
        for i in (0..5).rev() {
            let t = base + wm_model::Duration::from_minutes(5 * i);
            store
                .write(MapKind::Europe, FileKind::Svg, t, b"x")
                .unwrap();
        }
        store
            .write(MapKind::AsiaPacific, FileKind::Yaml, base, b"yy")
            .unwrap();
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 6);
        let europe = store.entries_of(MapKind::Europe, FileKind::Svg).unwrap();
        assert_eq!(europe.len(), 5);
        assert!(europe.windows(2).all(|w| w[0].timestamp < w[1].timestamp));
        assert_eq!(europe[0].size, 1);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn open_existing_rejects_missing_roots() {
        let dir = std::env::temp_dir().join(format!(
            "wm-dataset-test-absent-{}-does-not-exist",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let err = DatasetStore::open_existing(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert!(!dir.exists(), "open_existing must not create the root");

        // Once the tree exists, the same path opens fine.
        let created = temp_store("absent-then-present");
        let reopened = DatasetStore::open_existing(created.root()).unwrap();
        assert_eq!(reopened.root(), created.root());
        fs::remove_dir_all(created.root()).unwrap();
    }

    #[test]
    fn foreign_files_are_ignored() {
        let store = temp_store("foreign");
        fs::write(store.root().join("README.txt"), "hello").unwrap();
        fs::create_dir_all(store.root().join("europe/svg/2021/03/05")).unwrap();
        fs::write(store.root().join("europe/svg/2021/03/05/notes.md"), "x").unwrap();
        assert!(store.entries().unwrap().is_empty());
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn cache_and_dotfiles_never_surface_as_entries() {
        let store = temp_store("dotfiles");
        let t = Timestamp::from_ymd_hms(2022, 2, 1, 0, 0, 0);
        store
            .write(MapKind::Europe, FileKind::Yaml, t, b"map: europe")
            .unwrap();

        // The cache file itself, a torn temporary, editor backups next to
        // a real snapshot, and a hidden swap file in a date directory.
        store.write_cache(MapKind::Europe, b"cache bytes").unwrap();
        fs::write(store.root().join("europe/.longitudinal.cache.tmp"), b"torn").unwrap();
        let date_dir = store.root().join("europe/yaml/2022/02/01");
        fs::write(date_dir.join("0000.yaml~"), b"backup").unwrap();
        fs::write(date_dir.join(".0000.yaml.swp"), b"swap").unwrap();
        fs::write(date_dir.join("0000.yaml.bak"), b"bak").unwrap();

        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 1, "only the real snapshot: {entries:?}");
        assert_eq!(entries[0].timestamp, t);
        assert_eq!(entries[0].size, 11);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn cache_round_trip_and_removal() {
        let store = temp_store("cachefile");
        assert_eq!(store.open_cache(MapKind::World).unwrap(), None);
        store.write_cache(MapKind::World, b"abc").unwrap();
        assert_eq!(
            store.open_cache(MapKind::World).unwrap().as_deref(),
            Some(&b"abc"[..])
        );
        // Overwrite replaces atomically; the temporary must not linger.
        store.write_cache(MapKind::World, b"defg").unwrap();
        assert_eq!(
            store.open_cache(MapKind::World).unwrap().as_deref(),
            Some(&b"defg"[..])
        );
        assert!(!store.root().join("world/.longitudinal.cache.tmp").exists());
        store.remove_cache(MapKind::World).unwrap();
        assert_eq!(store.open_cache(MapKind::World).unwrap(), None);
        // Removing an absent cache is not an error.
        store.remove_cache(MapKind::World).unwrap();
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn segment_files_round_trip_and_stay_invisible() {
        let store = temp_store("segfiles");
        let t = Timestamp::from_ymd_hms(2022, 2, 1, 0, 0, 0);
        store
            .write(MapKind::Europe, FileKind::Yaml, t, b"map: europe")
            .unwrap();

        assert_eq!(store.read_manifest_bytes(MapKind::Europe).unwrap(), None);
        assert!(store
            .list_segment_files(MapKind::Europe)
            .unwrap()
            .is_empty());

        store
            .write_segment_file(MapKind::Europe, "seg-00.seg", b"one")
            .unwrap();
        store
            .write_segment_file(MapKind::Europe, "seg-01.seg", b"two")
            .unwrap();
        store.write_manifest_bytes(MapKind::Europe, b"mf").unwrap();
        assert_eq!(
            store.list_segment_files(MapKind::Europe).unwrap(),
            vec!["seg-00.seg".to_owned(), "seg-01.seg".to_owned()]
        );
        assert_eq!(
            store
                .read_segment_file(MapKind::Europe, "seg-00.seg")
                .unwrap()
                .as_deref(),
            Some(&b"one"[..])
        );
        assert_eq!(
            store
                .read_manifest_bytes(MapKind::Europe)
                .unwrap()
                .as_deref(),
            Some(&b"mf"[..])
        );
        // No temporaries linger after the atomic writes.
        assert!(!store
            .segments_dir(MapKind::Europe)
            .join("seg-00.seg.tmp")
            .exists());
        assert!(!store
            .segments_dir(MapKind::Europe)
            .join("manifest.tmp")
            .exists());

        // The dot-prefixed directory never pollutes corpus enumeration.
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 1, "only the snapshot: {entries:?}");

        store
            .remove_segment_file(MapKind::Europe, "seg-01.seg")
            .unwrap();
        store
            .remove_segment_file(MapKind::Europe, "seg-01.seg")
            .unwrap();
        assert_eq!(
            store.list_segment_files(MapKind::Europe).unwrap(),
            vec!["seg-00.seg".to_owned()]
        );
        store.remove_segments(MapKind::Europe).unwrap();
        assert!(!store.segments_dir(MapKind::Europe).exists());
        store.remove_segments(MapKind::Europe).unwrap();
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn missing_file_read_errors() {
        let store = temp_store("missing");
        let t = Timestamp::from_unix(0);
        assert!(store.read(MapKind::World, FileKind::Svg, t).is_err());
        assert!(!store.contains(MapKind::World, FileKind::Svg, t));
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn overwrite_is_allowed() {
        // Re-collection replaces the snapshot, like the paper's scraper
        // overwriting the most recent file.
        let store = temp_store("overwrite");
        let t = Timestamp::from_unix(0);
        store
            .write(MapKind::Europe, FileKind::Svg, t, b"v1")
            .unwrap();
        store
            .write(MapKind::Europe, FileKind::Svg, t, b"v2!")
            .unwrap();
        assert_eq!(
            &store.read(MapKind::Europe, FileKind::Svg, t).unwrap()[..],
            b"v2!"
        );
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].size, 3);
        fs::remove_dir_all(store.root()).unwrap();
    }
}
