//! On-disk corpus management for the OVH Weather dataset reproduction.
//!
//! The released dataset is a tree of files: the raw SVG snapshots as
//! collected every five minutes, and the processed YAML files next to
//! them. This crate provides the equivalent local store:
//!
//! * [`paths`] — the path layout
//!   (`<map>/<kind>/<YYYY>/<MM>/<DD>/<HHMM>.<ext>`) with a reversible
//!   timestamp codec, so a file's snapshot instant comes from its path;
//! * [`DatasetStore`] — writing, reading and enumerating snapshot files;
//! * [`CorpusStats`] — the per-map file-count/size aggregation reported in
//!   the paper's Table 2;
//! * [`longitudinal`] — the columnar longitudinal store: interned
//!   node/link symbol tables, per-link load time series and the topology
//!   event log, built in one deterministic streaming pass;
//! * [`loader`] — the shared parallel YAML corpus loader feeding either a
//!   snapshot vector or the columnar store, with a cache-aware entry
//!   point ([`build_longitudinal_cached`]) that fingerprints the corpus;
//! * [`codec`] — the versioned, checksummed binary cache format that
//!   persists a built store so later runs skip YAML entirely;
//! * [`segment`] / [`segments`] — the time-sharded segment store:
//!   sealed immutable window segments plus an active tail, a manifest
//!   mapping time spans to segment files, windowed loads
//!   ([`build_longitudinal_windowed`]) that decode only intersecting
//!   segments, and synchronous compaction ([`reindex_segments`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod loader;
pub mod longitudinal;
pub mod paths;
pub mod segment;
pub mod segments;
mod stats;
mod store;

pub use codec::{
    decode_store, encode_store, CacheError, CorpusFingerprint, FingerprintEntry, CACHE_MAGIC,
};
pub use loader::{
    build_longitudinal, build_longitudinal_cached, load_snapshots, CacheMode, CorpusLoadStats,
};
pub use longitudinal::{
    extract_longitudinal, ColumnarBuilder, LinkDef, LinkId, LinkSample, LongitudinalStore, NodeId,
    TopologyEvent,
};
pub use paths::{parse_path, relative_path, FileKind};
pub use segment::{
    decode_segment, decode_segment_header, encode_segment, identity_digest, SegmentHeader,
    SEGMENT_FORMAT_VERSION, SEGMENT_MAGIC,
};
pub use segments::{
    build_longitudinal_windowed, build_longitudinal_windowed_with, decode_manifest,
    encode_manifest, reindex_segments, reindex_segments_with, segment_name, write_manifest,
    SegmentManifest, SegmentMeta, SegmentPolicy, MANIFEST_FORMAT_VERSION, MANIFEST_MAGIC,
};
pub use stats::{CellStats, CorpusStats};
pub use store::{DatasetEntry, DatasetStore};
