//! On-disk corpus management for the OVH Weather dataset reproduction.
//!
//! The released dataset is a tree of files: the raw SVG snapshots as
//! collected every five minutes, and the processed YAML files next to
//! them. This crate provides the equivalent local store:
//!
//! * [`paths`] — the path layout
//!   (`<map>/<kind>/<YYYY>/<MM>/<DD>/<HHMM>.<ext>`) with a reversible
//!   timestamp codec, so a file's snapshot instant comes from its path;
//! * [`DatasetStore`] — writing, reading and enumerating snapshot files;
//! * [`CorpusStats`] — the per-map file-count/size aggregation reported in
//!   the paper's Table 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paths;
mod stats;
mod store;

pub use paths::{parse_path, relative_path, FileKind};
pub use stats::{CellStats, CorpusStats};
pub use store::{DatasetEntry, DatasetStore};
