//! The shared corpus loader: YAML files on disk to snapshots or a
//! [`LongitudinalStore`], read and parsed in parallel.
//!
//! Before this module every consumer of a corpus — the CLI's analyses,
//! each example — walked the tree and parsed YAML with its own loop.
//! This is the one canonical path. Workers claim files from a shared
//! cursor (same work-stealing shape as the extraction batch runner) and
//! fold parsed snapshots into per-worker [`SnapshotSink`]s; the merge is
//! keyed on file order, so results are byte-identical for any thread
//! count. Files that fail to parse are counted and skipped, like the
//! paper's scripts leaving a handful of unprocessed files per map; I/O
//! errors abort the load.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};

use wm_extract::{from_yaml_str, SnapshotSink};
use wm_model::{MapKind, Timestamp, TopologySnapshot};

use crate::longitudinal::{ColumnarBuilder, LongitudinalStore};
use crate::paths::FileKind;
use crate::store::DatasetStore;

/// Counters of one corpus load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusLoadStats {
    /// YAML files read.
    pub files: usize,
    /// Files successfully parsed into snapshots.
    pub parsed: usize,
    /// Files rejected by the YAML schema parser (counted, skipped).
    pub failed: usize,
    /// Total bytes read.
    pub bytes: u64,
}

impl CorpusLoadStats {
    fn merge(&mut self, other: CorpusLoadStats) {
        self.files += other.files;
        self.parsed += other.parsed;
        self.failed += other.failed;
        self.bytes += other.bytes;
    }
}

/// Loads every YAML snapshot of `map`, sorted by `(timestamp, file
/// order)` — the legacy materialised form, now behind the shared
/// parallel loader.
pub fn load_snapshots(
    store: &DatasetStore,
    map: MapKind,
    threads: usize,
) -> io::Result<(Vec<TopologySnapshot>, CorpusLoadStats)> {
    let (sinks, stats) = load_fold::<Vec<(usize, TopologySnapshot)>>(store, map, threads)?;
    let mut results: Vec<(usize, TopologySnapshot)> = sinks.into_iter().flatten().collect();
    results.sort_by_key(|(index, snapshot)| (snapshot.timestamp, *index));
    Ok((
        results.into_iter().map(|(_, snapshot)| snapshot).collect(),
        stats,
    ))
}

/// Loads every YAML snapshot of `map` straight into a
/// [`LongitudinalStore`] in one streaming pass — no intermediate
/// `Vec<TopologySnapshot>`.
pub fn build_longitudinal(
    store: &DatasetStore,
    map: MapKind,
    threads: usize,
) -> io::Result<(LongitudinalStore, CorpusLoadStats)> {
    let (builders, stats) = load_fold::<ColumnarBuilder>(store, map, threads)?;
    Ok((ColumnarBuilder::finish(builders), stats))
}

/// The loader core: reads and parses all YAML entries of `map`, folding
/// snapshots into one [`SnapshotSink`] per worker (returned in worker
/// order, never finish order).
fn load_fold<S: SnapshotSink>(
    store: &DatasetStore,
    map: MapKind,
    threads: usize,
) -> io::Result<(Vec<S>, CorpusLoadStats)> {
    let entries = store.entries_of(map, FileKind::Yaml)?;
    let threads = threads.max(1).min(entries.len().max(1));

    if threads == 1 {
        // Serial fast path, same code per file.
        let mut sink = S::default();
        let mut stats = CorpusLoadStats::default();
        for (index, entry) in entries.iter().enumerate() {
            read_one(store, map, entry.timestamp, index, &mut sink, &mut stats)?;
        }
        return Ok((vec![sink], stats));
    }

    let cursor = AtomicUsize::new(0);
    let (cursor, entries) = (&cursor, &entries);
    let outcomes: Vec<io::Result<(S, CorpusLoadStats)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut sink = S::default();
                    let mut stats = CorpusLoadStats::default();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(entry) = entries.get(index) else {
                            break;
                        };
                        read_one(store, map, entry.timestamp, index, &mut sink, &mut stats)?;
                    }
                    Ok((sink, stats))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("corpus loader worker panicked"))
            .collect()
    });

    let mut sinks = Vec::with_capacity(threads);
    let mut stats = CorpusLoadStats::default();
    for outcome in outcomes {
        let (sink, worker_stats) = outcome?;
        sinks.push(sink);
        stats.merge(worker_stats);
    }
    Ok((sinks, stats))
}

fn read_one<S: SnapshotSink>(
    store: &DatasetStore,
    map: MapKind,
    timestamp: Timestamp,
    index: usize,
    sink: &mut S,
    stats: &mut CorpusLoadStats,
) -> io::Result<()> {
    let bytes = store.read(map, FileKind::Yaml, timestamp)?;
    stats.files += 1;
    stats.bytes += bytes.len() as u64;
    let text = String::from_utf8_lossy(&bytes);
    match from_yaml_str(&text) {
        Ok(snapshot) => {
            stats.parsed += 1;
            sink.accept(index, snapshot);
        }
        Err(_) => stats.failed += 1,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_extract::to_yaml_string;
    use wm_model::{Duration, Link, LinkEnd, Load, Node};

    fn temp_store(tag: &str) -> DatasetStore {
        let dir = std::env::temp_dir().join(format!("wm-loader-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DatasetStore::open(dir).expect("temp store")
    }

    fn snapshot(t: Timestamp, load: u8) -> TopologySnapshot {
        let mut s = TopologySnapshot::new(MapKind::Europe, t);
        s.nodes = vec![Node::from_name("rbx-g1"), Node::from_name("fra-fr5")];
        s.links = vec![Link::new(
            LinkEnd::new(
                Node::from_name("rbx-g1"),
                Some("#1".into()),
                Load::new(load).unwrap(),
            ),
            LinkEnd::new(
                Node::from_name("fra-fr5"),
                Some("#1".into()),
                Load::new(100 - load).unwrap(),
            ),
        )];
        s
    }

    fn write_corpus(store: &DatasetStore, count: usize) -> Vec<TopologySnapshot> {
        let base = Timestamp::from_ymd(2021, 5, 1);
        (0..count)
            .map(|i| {
                let t = base + Duration::from_minutes(5 * i as i64);
                let snap = snapshot(t, (i % 100) as u8);
                store
                    .write(
                        MapKind::Europe,
                        FileKind::Yaml,
                        t,
                        to_yaml_string(&snap).as_bytes(),
                    )
                    .unwrap();
                snap
            })
            .collect()
    }

    #[test]
    fn loads_match_written_corpus_at_any_thread_count() {
        let store = temp_store("threads");
        let written = write_corpus(&store, 13);
        // One garbage file: counted as failed, skipped.
        let bad_t = Timestamp::from_ymd(2021, 5, 2);
        store
            .write(MapKind::Europe, FileKind::Yaml, bad_t, b"not: [yaml")
            .unwrap();

        let (serial, serial_stats) = load_snapshots(&store, MapKind::Europe, 1).unwrap();
        assert_eq!(serial, written);
        assert_eq!(serial_stats.files, 14);
        assert_eq!(serial_stats.parsed, 13);
        assert_eq!(serial_stats.failed, 1);
        for threads in [2, 8] {
            let (parallel, stats) = load_snapshots(&store, MapKind::Europe, threads).unwrap();
            assert_eq!(parallel, serial, "{threads} threads");
            assert_eq!(stats, serial_stats, "{threads} threads");
        }
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn longitudinal_build_is_thread_invariant() {
        let store = temp_store("columnar");
        let written = write_corpus(&store, 11);
        let (baseline, stats) = build_longitudinal(&store, MapKind::Europe, 1).unwrap();
        assert_eq!(baseline.len(), written.len());
        assert_eq!(stats.parsed, written.len());
        for (i, snap) in written.iter().enumerate() {
            assert_eq!(&baseline.snapshot(i), snap);
        }
        for threads in [2, 8] {
            let (store2, stats2) = build_longitudinal(&store, MapKind::Europe, threads).unwrap();
            assert_eq!(store2, baseline, "{threads} threads");
            assert_eq!(stats2, stats, "{threads} threads");
        }
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn empty_map_loads_empty() {
        let store = temp_store("empty");
        let (snaps, stats) = load_snapshots(&store, MapKind::World, 4).unwrap();
        assert!(snaps.is_empty());
        assert_eq!(stats, CorpusLoadStats::default());
        std::fs::remove_dir_all(store.root()).unwrap();
    }
}
