//! The shared corpus loader: YAML files on disk to snapshots or a
//! [`LongitudinalStore`], read and parsed in parallel.
//!
//! Before this module every consumer of a corpus — the CLI's analyses,
//! each example — walked the tree and parsed YAML with its own loop.
//! This is the one canonical path. Workers claim files from a shared
//! cursor (same work-stealing shape as the extraction batch runner) and
//! fold parsed snapshots into per-worker [`SnapshotSink`]s; the merge is
//! keyed on file order, so results are byte-identical for any thread
//! count. Files that fail to parse are counted and skipped, like the
//! paper's scripts leaving a handful of unprocessed files per map; I/O
//! errors abort the load.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};

use wm_extract::{from_yaml_str, CacheStats, SnapshotSink};
use wm_model::{MapKind, Timestamp, TopologySnapshot};

use crate::codec::{self, CorpusFingerprint, FingerprintEntry};
use crate::longitudinal::{ColumnarBuilder, LongitudinalStore};
use crate::paths::{relative_path, FileKind};
use crate::store::{DatasetEntry, DatasetStore};

/// Counters of one corpus load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusLoadStats {
    /// YAML files read.
    pub files: usize,
    /// Files successfully parsed into snapshots.
    pub parsed: usize,
    /// Files rejected by the YAML schema parser (counted, skipped).
    pub failed: usize,
    /// Total bytes read.
    pub bytes: u64,
    /// Cache activity of this load (all zero on the plain, uncached
    /// paths). Deterministic like every other field.
    pub cache: CacheStats,
}

impl CorpusLoadStats {
    pub(crate) fn merge(&mut self, other: CorpusLoadStats) {
        self.files += other.files;
        self.parsed += other.parsed;
        self.failed += other.failed;
        self.bytes += other.bytes;
        self.cache.merge(&other.cache);
    }

    /// The counters of the parse work only, cache activity zeroed —
    /// what a fresh uncached build over the same corpus would report.
    #[must_use]
    pub fn base(&self) -> CorpusLoadStats {
        CorpusLoadStats {
            cache: CacheStats::default(),
            ..*self
        }
    }
}

/// How a cache-aware load treats the on-disk cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// Use a valid cache (hit or incremental append), rebuild otherwise.
    #[default]
    Auto,
    /// Ignore the cache entirely: plain build, nothing read or written.
    Off,
    /// Rebuild from YAML unconditionally and overwrite the cache.
    Rebuild,
}

impl CacheMode {
    /// Parses the CLI spelling (`auto` / `off` / `rebuild`).
    #[must_use]
    pub fn parse(s: &str) -> Option<CacheMode> {
        match s {
            "auto" => Some(CacheMode::Auto),
            "off" => Some(CacheMode::Off),
            "rebuild" => Some(CacheMode::Rebuild),
            _ => None,
        }
    }
}

/// Loads every YAML snapshot of `map`, sorted by `(timestamp, file
/// order)` — the legacy materialised form, now behind the shared
/// parallel loader.
pub fn load_snapshots(
    store: &DatasetStore,
    map: MapKind,
    threads: usize,
) -> io::Result<(Vec<TopologySnapshot>, CorpusLoadStats)> {
    let entries = store.entries_of(map, FileKind::Yaml)?;
    let (snapshots, stats, _) = load_sorted(store, map, &entries, threads, false)?;
    Ok((snapshots, stats))
}

/// Loads every YAML snapshot of `map` straight into a
/// [`LongitudinalStore`] in one streaming pass — no intermediate
/// `Vec<TopologySnapshot>`.
pub fn build_longitudinal(
    store: &DatasetStore,
    map: MapKind,
    threads: usize,
) -> io::Result<(LongitudinalStore, CorpusLoadStats)> {
    let entries = store.entries_of(map, FileKind::Yaml)?;
    let (builders, stats, _) =
        load_fold_entries::<ColumnarBuilder>(store, map, &entries, threads, false)?;
    Ok((ColumnarBuilder::finish(builders), stats))
}

/// The cache-aware longitudinal load: consult the on-disk cache per
/// `mode`, fall back to (and persist) a fresh build when it cannot be
/// used, and extend it in place when the corpus only grew.
///
/// The returned store is always identical to what [`build_longitudinal`]
/// would produce over the current corpus — the cache changes the work,
/// never the answer. `stats.cache` records what happened (hit, miss,
/// append, corrupt), and the non-cache counters always equal a fresh
/// build's counters, so downstream reports are path-independent.
///
/// Cache problems are never fatal: a corrupt or unwritable cache file
/// degrades to an uncached build with a warning on stderr.
pub fn build_longitudinal_cached(
    store: &DatasetStore,
    map: MapKind,
    threads: usize,
    mode: CacheMode,
) -> io::Result<(LongitudinalStore, CorpusLoadStats)> {
    if mode == CacheMode::Off {
        return build_longitudinal(store, map, threads);
    }

    let entries = store.entries_of(map, FileKind::Yaml)?;
    let mut cache = CacheStats::default();

    let cached = if mode == CacheMode::Rebuild {
        None
    } else {
        match store.open_cache(map)? {
            None => None,
            Some(bytes) => match codec::decode_store(&bytes) {
                Ok(decoded) => Some(decoded),
                Err(err) => {
                    eprintln!(
                        "warning: discarding longitudinal cache for {}: {err}; rebuilding from YAML",
                        map.slug()
                    );
                    // A version mismatch is staleness, not damage: the
                    // image is structurally sound, this build just
                    // cannot read it.
                    if matches!(err, codec::CacheError::UnsupportedVersion(_)) {
                        cache.stale += 1;
                    } else {
                        cache.corrupt += 1;
                    }
                    None
                }
            },
        }
    };

    let Some((mut cached_store, cached_fp, cached_stats)) = cached else {
        cache.misses += 1;
        return rebuild_and_persist(store, map, &entries, threads, cache);
    };

    // A usable cache exists: hash the corpus (no parsing) and compare.
    let hashes = hash_entries(store, map, &entries, threads)?;
    let current_fp = fingerprint_from(map, &entries, &hashes);

    if current_fp == cached_fp {
        cache.hits += 1;
        cache.snapshots_from_cache = cached_store.len() as u64;
        let mut stats = cached_stats;
        stats.cache = cache;
        return Ok((cached_store, stats));
    }

    if let Some(shared) = cached_fp.strict_prefix_of(&current_fp) {
        // The corpus only grew: parse the tail, append in place.
        let (tail, tail_stats, _) = load_sorted(store, map, &entries[shared..], threads, false)?;
        if can_append(&cached_store, &tail) {
            cache.appends += 1;
            cache.snapshots_from_cache = cached_store.len() as u64;
            cache.snapshots_appended = tail.len() as u64;
            cached_store.append_snapshots(&tail);
            let mut stats = cached_stats;
            stats.merge(tail_stats);
            persist(store, map, &cached_store, &current_fp, &stats);
            stats.cache = cache;
            return Ok((cached_store, stats));
        }
    }

    // Shrunk, edited, or a tail that is not strictly newer: full rebuild.
    cache.misses += 1;
    rebuild_and_persist(store, map, &entries, threads, cache)
}

/// An appended tail must be strictly newer than the cached history for
/// [`LongitudinalStore::append_snapshots`] to reproduce a full rebuild.
/// Path order implies timestamp order, so this only rejects exotic
/// corpora (e.g. an equal-timestamp boundary after a re-collection).
fn can_append(cached: &LongitudinalStore, tail: &[TopologySnapshot]) -> bool {
    match cached.timestamps().last() {
        None => true,
        Some(&last) => tail.iter().all(|snapshot| snapshot.timestamp > last),
    }
}

/// Full parse of `entries` (hashing as it reads), persist, return.
fn rebuild_and_persist(
    store: &DatasetStore,
    map: MapKind,
    entries: &[DatasetEntry],
    threads: usize,
    cache: CacheStats,
) -> io::Result<(LongitudinalStore, CorpusLoadStats)> {
    let (builders, mut stats, hashes) =
        load_fold_entries::<ColumnarBuilder>(store, map, entries, threads, true)?;
    let columnar = ColumnarBuilder::finish(builders);
    let fingerprint = fingerprint_from(map, entries, &hashes);
    persist(store, map, &columnar, &fingerprint, &stats);
    stats.cache = cache;
    Ok((columnar, stats))
}

/// Writes the cache image; failure warns and is otherwise ignored (the
/// build result is already in hand).
fn persist(
    store: &DatasetStore,
    map: MapKind,
    columnar: &LongitudinalStore,
    fingerprint: &CorpusFingerprint,
    stats: &CorpusLoadStats,
) {
    let image = codec::encode_store(columnar, fingerprint, &stats.base());
    if let Err(err) = store.write_cache(map, &image) {
        eprintln!(
            "warning: could not write longitudinal cache for {}: {err}",
            map.slug()
        );
    }
}

/// The corpus fingerprint from enumerated entries plus per-file hashes.
pub(crate) fn fingerprint_from(
    map: MapKind,
    entries: &[DatasetEntry],
    hashes: &[u64],
) -> CorpusFingerprint {
    CorpusFingerprint {
        entries: entries
            .iter()
            .zip(hashes)
            .map(|(entry, &hash)| FingerprintEntry {
                path: relative_path_string(map, entry.timestamp),
                size: entry.size,
                hash,
            })
            .collect(),
    }
}

/// The layout-relative path of one snapshot file as a `/`-joined string
/// (platform-independent, so fingerprints are portable).
pub(crate) fn relative_path_string(map: MapKind, timestamp: Timestamp) -> String {
    let path = relative_path(map, FileKind::Yaml, timestamp);
    let mut out = String::new();
    for component in path.iter() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&component.to_string_lossy());
    }
    out
}

/// Materialises `entries` as snapshots sorted by `(timestamp, entry
/// order)`, like the legacy loader, optionally hashing file contents.
pub(crate) fn load_sorted(
    store: &DatasetStore,
    map: MapKind,
    entries: &[DatasetEntry],
    threads: usize,
    hash: bool,
) -> io::Result<(Vec<TopologySnapshot>, CorpusLoadStats, Vec<u64>)> {
    let (sinks, stats, hashes) =
        load_fold_entries::<Vec<(usize, TopologySnapshot)>>(store, map, entries, threads, hash)?;
    let mut results: Vec<(usize, TopologySnapshot)> = sinks.into_iter().flatten().collect();
    results.sort_by_key(|(index, snapshot)| (snapshot.timestamp, *index));
    Ok((
        results.into_iter().map(|(_, snapshot)| snapshot).collect(),
        stats,
        hashes,
    ))
}

/// Hashes every entry's contents in parallel without parsing anything —
/// the cache-validation pass. Returned in entry order.
pub(crate) fn hash_entries(
    store: &DatasetStore,
    map: MapKind,
    entries: &[DatasetEntry],
    threads: usize,
) -> io::Result<Vec<u64>> {
    let threads = threads.max(1).min(entries.len().max(1));
    if threads <= 1 {
        return entries
            .iter()
            .map(|entry| {
                store
                    .read(map, FileKind::Yaml, entry.timestamp)
                    .map(|bytes| codec::fnv1a(&bytes))
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let (cursor, entries) = (&cursor, entries);
    let outcomes: Vec<io::Result<Vec<(usize, u64)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut hashes = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(entry) = entries.get(index) else {
                            break;
                        };
                        let bytes = store.read(map, FileKind::Yaml, entry.timestamp)?;
                        hashes.push((index, codec::fnv1a(&bytes)));
                    }
                    Ok(hashes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("corpus hasher worker panicked"))
            .collect()
    });
    let mut hashes = vec![0u64; entries.len()];
    for outcome in outcomes {
        for (index, hash) in outcome? {
            hashes[index] = hash;
        }
    }
    Ok(hashes)
}

/// The loader core: reads and parses the given YAML entries of `map`,
/// folding snapshots into one [`SnapshotSink`] per worker (returned in
/// worker order, never finish order). With `hash` set, also returns the
/// FNV-1a content hash of every entry, in entry order — the combined
/// parse-and-fingerprint pass of the cache-miss path, which avoids
/// reading each file twice.
pub(crate) fn load_fold_entries<S: SnapshotSink>(
    store: &DatasetStore,
    map: MapKind,
    entries: &[DatasetEntry],
    threads: usize,
    hash: bool,
) -> io::Result<(Vec<S>, CorpusLoadStats, Vec<u64>)> {
    let threads = threads.max(1).min(entries.len().max(1));

    if threads == 1 {
        // Serial fast path, same code per file.
        let mut sink = S::default();
        let mut stats = CorpusLoadStats::default();
        let mut hashes = Vec::new();
        for (index, entry) in entries.iter().enumerate() {
            let h = read_one(
                store,
                map,
                entry.timestamp,
                index,
                &mut sink,
                &mut stats,
                hash,
            )?;
            if hash {
                hashes.push(h);
            }
        }
        return Ok((vec![sink], stats, hashes));
    }

    type WorkerOut<S> = (S, CorpusLoadStats, Vec<(usize, u64)>);
    let cursor = AtomicUsize::new(0);
    let (cursor, entries) = (&cursor, entries);
    let outcomes: Vec<io::Result<WorkerOut<S>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut sink = S::default();
                    let mut stats = CorpusLoadStats::default();
                    let mut hashes = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(entry) = entries.get(index) else {
                            break;
                        };
                        let h = read_one(
                            store,
                            map,
                            entry.timestamp,
                            index,
                            &mut sink,
                            &mut stats,
                            hash,
                        )?;
                        if hash {
                            hashes.push((index, h));
                        }
                    }
                    Ok((sink, stats, hashes))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("corpus loader worker panicked"))
            .collect()
    });

    let mut sinks = Vec::with_capacity(threads);
    let mut stats = CorpusLoadStats::default();
    let mut hashes = if hash {
        vec![0u64; entries.len()]
    } else {
        Vec::new()
    };
    for outcome in outcomes {
        let (sink, worker_stats, worker_hashes) = outcome?;
        sinks.push(sink);
        stats.merge(worker_stats);
        for (index, h) in worker_hashes {
            hashes[index] = h;
        }
    }
    Ok((sinks, stats, hashes))
}

#[allow(clippy::too_many_arguments)]
fn read_one<S: SnapshotSink>(
    store: &DatasetStore,
    map: MapKind,
    timestamp: Timestamp,
    index: usize,
    sink: &mut S,
    stats: &mut CorpusLoadStats,
    hash: bool,
) -> io::Result<u64> {
    let bytes = store.read(map, FileKind::Yaml, timestamp)?;
    stats.files += 1;
    stats.bytes += bytes.len() as u64;
    let h = if hash { codec::fnv1a(&bytes) } else { 0 };
    let text = String::from_utf8_lossy(&bytes);
    match from_yaml_str(&text) {
        Ok(snapshot) => {
            stats.parsed += 1;
            sink.accept(index, snapshot);
        }
        Err(_) => stats.failed += 1,
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_extract::to_yaml_string;
    use wm_model::{Duration, Link, LinkEnd, Load, Node};

    fn temp_store(tag: &str) -> DatasetStore {
        let dir = std::env::temp_dir().join(format!("wm-loader-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DatasetStore::open(dir).expect("temp store")
    }

    fn snapshot(t: Timestamp, load: u8) -> TopologySnapshot {
        let mut s = TopologySnapshot::new(MapKind::Europe, t);
        s.nodes = vec![Node::from_name("rbx-g1"), Node::from_name("fra-fr5")];
        s.links = vec![Link::new(
            LinkEnd::new(
                Node::from_name("rbx-g1"),
                Some("#1".into()),
                Load::new(load).unwrap(),
            ),
            LinkEnd::new(
                Node::from_name("fra-fr5"),
                Some("#1".into()),
                Load::new(100 - load).unwrap(),
            ),
        )];
        s
    }

    fn write_corpus(store: &DatasetStore, count: usize) -> Vec<TopologySnapshot> {
        let base = Timestamp::from_ymd(2021, 5, 1);
        (0..count)
            .map(|i| {
                let t = base + Duration::from_minutes(5 * i as i64);
                let snap = snapshot(t, (i % 100) as u8);
                store
                    .write(
                        MapKind::Europe,
                        FileKind::Yaml,
                        t,
                        to_yaml_string(&snap).as_bytes(),
                    )
                    .unwrap();
                snap
            })
            .collect()
    }

    #[test]
    fn loads_match_written_corpus_at_any_thread_count() {
        let store = temp_store("threads");
        let written = write_corpus(&store, 13);
        // One garbage file: counted as failed, skipped.
        let bad_t = Timestamp::from_ymd(2021, 5, 2);
        store
            .write(MapKind::Europe, FileKind::Yaml, bad_t, b"not: [yaml")
            .unwrap();

        let (serial, serial_stats) = load_snapshots(&store, MapKind::Europe, 1).unwrap();
        assert_eq!(serial, written);
        assert_eq!(serial_stats.files, 14);
        assert_eq!(serial_stats.parsed, 13);
        assert_eq!(serial_stats.failed, 1);
        for threads in [2, 8] {
            let (parallel, stats) = load_snapshots(&store, MapKind::Europe, threads).unwrap();
            assert_eq!(parallel, serial, "{threads} threads");
            assert_eq!(stats, serial_stats, "{threads} threads");
        }
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn longitudinal_build_is_thread_invariant() {
        let store = temp_store("columnar");
        let written = write_corpus(&store, 11);
        let (baseline, stats) = build_longitudinal(&store, MapKind::Europe, 1).unwrap();
        assert_eq!(baseline.len(), written.len());
        assert_eq!(stats.parsed, written.len());
        for (i, snap) in written.iter().enumerate() {
            assert_eq!(&baseline.snapshot(i), snap);
        }
        for threads in [2, 8] {
            let (store2, stats2) = build_longitudinal(&store, MapKind::Europe, threads).unwrap();
            assert_eq!(store2, baseline, "{threads} threads");
            assert_eq!(stats2, stats, "{threads} threads");
        }
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn empty_map_loads_empty() {
        let store = temp_store("empty");
        let (snaps, stats) = load_snapshots(&store, MapKind::World, 4).unwrap();
        assert!(snaps.is_empty());
        assert_eq!(stats, CorpusLoadStats::default());
        std::fs::remove_dir_all(store.root()).unwrap();
    }
}
