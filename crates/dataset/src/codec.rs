//! The versioned binary cache codec for [`LongitudinalStore`].
//!
//! Every `analyze`/`stats` run before this module re-parsed the whole
//! YAML corpus from scratch — and EXPERIMENTS.md's single-pass table
//! shows that parse dominating end-to-end time. The paper's own workflow
//! (§4–§5) analyses one frozen corpus many times, which is exactly the
//! shape a persisted cache amortises: parse once, reload in milliseconds.
//!
//! # On-disk format (version 1)
//!
//! ```text
//! [ magic "OVHWMLC\n" (8 bytes) ][ u32 format version ]
//! [ u32 section count ]
//! [ section table: per section { u32 tag, u64 offset, u64 len, u32 crc } ]
//! [ section payloads ... ]
//! ```
//!
//! All integers are little-endian. Each section's CRC-32 (IEEE) covers
//! its payload bytes, so a flipped bit anywhere is detected before any
//! payload is interpreted. Sections:
//!
//! | tag | contents |
//! |-----|----------|
//! | `FPRT` | corpus fingerprint: per-file relative path, size, FNV-1a hash |
//! | `STAT` | the [`CorpusLoadStats`] base counters of the original build |
//! | `NODE` | the sorted node symbol table |
//! | `LDEF` | the sorted link-identity table |
//! | `SNAP` | timestamps, map kinds, node/link offset tables |
//! | `CELL` | node cells and link rows (ids + loads + orientation bits) |
//! | `EVNT` | the topology event log |
//!
//! The load and orientation columns are stored as raw byte runs and
//! deserialised with bulk slice copies; `u32` columns are fixed-width
//! little-endian runs decoded chunk-wise — no per-token branching. The
//! inverted link-series index is *not* stored: it is a deterministic
//! counting sort over the link column and is rebuilt on load, which costs
//! less than reading and checksumming it would.
//!
//! Decoding never panics: every read is bounds-checked, every id and load
//! is validated, and any violation (truncation, bad magic, unknown
//! version, CRC mismatch, dangling id) surfaces as [`CacheError`] so the
//! caller can fall back to a clean YAML rebuild.

use std::fmt;

use wm_model::{GroupDelta, Load, MapKind, Node, NodeKind, SnapshotDiff, Timestamp};

use crate::loader::CorpusLoadStats;
use crate::longitudinal::{LinkDef, LongitudinalStore, NodeId, TopologyEvent};

/// The eight magic bytes opening every cache file.
pub const CACHE_MAGIC: [u8; 8] = *b"OVHWMLC\n";

/// The current cache format version. Bump on any layout change; older
/// versions are rejected (and rebuilt), never migrated.
pub const CACHE_FORMAT_VERSION: u32 = 1;

const TAG_FINGERPRINT: u32 = u32::from_le_bytes(*b"FPRT");
const TAG_STATS: u32 = u32::from_le_bytes(*b"STAT");
const TAG_NODES: u32 = u32::from_le_bytes(*b"NODE");
const TAG_DEFS: u32 = u32::from_le_bytes(*b"LDEF");
const TAG_SNAPSHOTS: u32 = u32::from_le_bytes(*b"SNAP");
const TAG_CELLS: u32 = u32::from_le_bytes(*b"CELL");
const TAG_EVENTS: u32 = u32::from_le_bytes(*b"EVNT");

/// Section tags of version 1, in file order.
const SECTION_TAGS: [u32; 7] = [
    TAG_FINGERPRINT,
    TAG_STATS,
    TAG_NODES,
    TAG_DEFS,
    TAG_SNAPSHOTS,
    TAG_CELLS,
    TAG_EVENTS,
];

/// Why a cache file was rejected.
///
/// Every variant means "this file is not a usable cache"; none is a
/// programming error, and the cache-aware loader reacts to all of them
/// the same way — warn and rebuild from YAML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The file does not start with [`CACHE_MAGIC`].
    BadMagic,
    /// The file's format version is not [`CACHE_FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// A read ran past the end of the file.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A section payload failed its CRC-32 check.
    ChecksumMismatch {
        /// The four-character section tag.
        section: String,
    },
    /// The section table is malformed (missing, duplicated or
    /// out-of-bounds sections).
    BadSectionTable(&'static str),
    /// A decoded value violates a structural invariant (dangling id,
    /// load above 100, non-monotonic offsets, ...).
    Invalid(&'static str),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::BadMagic => write!(f, "not a longitudinal cache file (bad magic)"),
            CacheError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported cache format version {v} (this build reads {CACHE_FORMAT_VERSION})"
                )
            }
            CacheError::Truncated { context } => {
                write!(f, "cache file truncated while reading {context}")
            }
            CacheError::ChecksumMismatch { section } => {
                write!(f, "cache section {section:?} failed its CRC-32 check")
            }
            CacheError::BadSectionTable(why) => write!(f, "bad cache section table: {why}"),
            CacheError::Invalid(why) => write!(f, "invalid cache contents: {why}"),
        }
    }
}

impl std::error::Error for CacheError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, std-only.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit hash — the per-file content hash of the fingerprint.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Corpus fingerprint.
// ---------------------------------------------------------------------------

/// One corpus file's identity inside a [`CorpusFingerprint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintEntry {
    /// Relative path under the corpus root, `/`-separated.
    pub path: String,
    /// File size in bytes.
    pub size: u64,
    /// FNV-1a 64 hash of the file contents.
    pub hash: u64,
}

/// The identity of one map's YAML corpus: every snapshot file's relative
/// path, length and content hash, in timestamp order.
///
/// Only layout-conforming snapshot files participate — the cache file
/// itself, editor backups and other foreign files in the corpus tree
/// never influence the fingerprint (see [`crate::paths::parse_path`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorpusFingerprint {
    /// Per-file identities, sorted by snapshot timestamp.
    pub entries: Vec<FingerprintEntry>,
}

impl CorpusFingerprint {
    /// Number of fingerprinted files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no files were fingerprinted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A single digest over the whole fingerprint, for display.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for entry in &self.entries {
            h ^= fnv1a(entry.path.as_bytes()) ^ entry.size ^ entry.hash;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// When `newer` extends `self` by appending files (same prefix, at
    /// least one extra entry), returns how many entries the shared prefix
    /// holds. Returns `None` when `newer` is not a strict extension.
    #[must_use]
    pub fn strict_prefix_of(&self, newer: &CorpusFingerprint) -> Option<usize> {
        if newer.entries.len() <= self.entries.len() {
            return None;
        }
        self.entries
            .iter()
            .zip(&newer.entries)
            .all(|(a, b)| a == b)
            .then_some(self.entries.len())
    }
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    pub(crate) fn str16(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize);
        self.u16(s.len() as u16);
        self.bytes(s.as_bytes());
    }
    pub(crate) fn opt_str16(&mut self, s: Option<&str>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str16(s);
            }
        }
    }
    pub(crate) fn u32_run(&mut self, values: &[u32]) {
        self.u64(values.len() as u64);
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn map_kind_code(map: MapKind) -> u8 {
    match map {
        MapKind::Europe => 0,
        MapKind::World => 1,
        MapKind::NorthAmerica => 2,
        MapKind::AsiaPacific => 3,
    }
}

fn map_kind_from_code(code: u8) -> Option<MapKind> {
    match code {
        0 => Some(MapKind::Europe),
        1 => Some(MapKind::World),
        2 => Some(MapKind::NorthAmerica),
        3 => Some(MapKind::AsiaPacific),
        _ => None,
    }
}

fn node_kind_code(kind: NodeKind) -> u8 {
    match kind {
        NodeKind::Router => 0,
        NodeKind::Peering => 1,
    }
}

fn node_kind_from_code(code: u8) -> Option<NodeKind> {
    match code {
        0 => Some(NodeKind::Router),
        1 => Some(NodeKind::Peering),
        _ => None,
    }
}

fn encode_node(w: &mut Writer, node: &Node) {
    w.u8(node_kind_code(node.kind));
    w.str16(node.name.as_str());
}

fn encode_diff(w: &mut Writer, diff: &SnapshotDiff) {
    w.u32(diff.added_nodes.len() as u32);
    for node in &diff.added_nodes {
        encode_node(w, node);
    }
    w.u32(diff.removed_nodes.len() as u32);
    for node in &diff.removed_nodes {
        encode_node(w, node);
    }
    w.u32(diff.group_changes.len() as u32);
    for change in &diff.group_changes {
        w.str16(&change.a);
        w.str16(&change.b);
        w.u64(change.before as u64);
        w.u64(change.after as u64);
    }
}

/// Serialises a store, its corpus fingerprint and the load counters of
/// the build that produced it into one cache image.
#[must_use]
pub fn encode_store(
    store: &LongitudinalStore,
    fingerprint: &CorpusFingerprint,
    stats: &CorpusLoadStats,
) -> Vec<u8> {
    let mut sections: Vec<(u32, Vec<u8>)> = Vec::with_capacity(SECTION_TAGS.len());

    let mut w = Writer { buf: Vec::new() };
    w.u64(fingerprint.entries.len() as u64);
    for entry in &fingerprint.entries {
        w.str16(&entry.path);
        w.u64(entry.size);
        w.u64(entry.hash);
    }
    sections.push((TAG_FINGERPRINT, std::mem::take(&mut w.buf)));

    w.u64(stats.files as u64);
    w.u64(stats.parsed as u64);
    w.u64(stats.failed as u64);
    w.u64(stats.bytes);
    sections.push((TAG_STATS, std::mem::take(&mut w.buf)));

    w.u32(store.nodes.len() as u32);
    for node in &store.nodes {
        encode_node(&mut w, node);
    }
    sections.push((TAG_NODES, std::mem::take(&mut w.buf)));

    w.u32(store.defs.len() as u32);
    for def in &store.defs {
        w.u32(def.a.index() as u32);
        w.u32(def.b.index() as u32);
        w.opt_str16(def.label_a.as_deref());
        w.opt_str16(def.label_b.as_deref());
    }
    sections.push((TAG_DEFS, std::mem::take(&mut w.buf)));

    w.u32(store.timestamps.len() as u32);
    for &t in &store.timestamps {
        w.i64(t.unix());
    }
    for &map in &store.maps {
        w.u8(map_kind_code(map));
    }
    w.u32_run(&store.node_offsets);
    w.u32_run(&store.link_offsets);
    sections.push((TAG_SNAPSHOTS, std::mem::take(&mut w.buf)));

    w.u32_run(&store.node_cells);
    w.u32_run(&store.link_cells);
    w.u64(store.load_a.len() as u64);
    w.bytes(&store.load_a);
    w.bytes(&store.load_b);
    w.bytes(
        &store
            .flipped
            .iter()
            .map(|&f| u8::from(f))
            .collect::<Vec<u8>>(),
    );
    sections.push((TAG_CELLS, std::mem::take(&mut w.buf)));

    w.u32(store.events.len() as u32);
    for event in &store.events {
        w.i64(event.previous.unix());
        w.i64(event.at.unix());
        encode_diff(&mut w, &event.diff);
    }
    sections.push((TAG_EVENTS, std::mem::take(&mut w.buf)));

    // Assemble: header, table, payloads.
    let header_len = CACHE_MAGIC.len() + 4 + 4;
    let table_len = sections.len() * (4 + 8 + 8 + 4);
    let mut out = Vec::with_capacity(
        header_len + table_len + sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
    );
    out.extend_from_slice(&CACHE_MAGIC);
    out.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = (header_len + table_len) as u64;
    for (tag, payload) in &sections {
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        offset += payload.len() as u64;
    }
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over a section payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CacheError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(CacheError::Truncated { context })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, CacheError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn u16(&mut self, context: &'static str) -> Result<u16, CacheError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, CacheError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, CacheError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub(crate) fn i64(&mut self, context: &'static str) -> Result<i64, CacheError> {
        Ok(self.u64(context)? as i64)
    }

    pub(crate) fn str16(&mut self, context: &'static str) -> Result<&'a str, CacheError> {
        let len = self.u16(context)? as usize;
        let bytes = self.take(len, context)?;
        std::str::from_utf8(bytes).map_err(|_| CacheError::Invalid("non-UTF-8 string"))
    }

    pub(crate) fn opt_str16(
        &mut self,
        context: &'static str,
    ) -> Result<Option<&'a str>, CacheError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.str16(context)?)),
            _ => Err(CacheError::Invalid("bad optional-string marker")),
        }
    }

    /// Bulk-decodes a length-prefixed `u32` run.
    pub(crate) fn u32_run(&mut self, context: &'static str) -> Result<Vec<u32>, CacheError> {
        let len = self.checked_len(context)?;
        let bytes = self.take(len * 4, context)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    /// Reads a `u64` count and sanity-bounds it against the bytes left,
    /// so a corrupt length cannot trigger a huge allocation.
    pub(crate) fn checked_len(&mut self, context: &'static str) -> Result<usize, CacheError> {
        let len = self.u64(context)?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if len > remaining {
            return Err(CacheError::Truncated { context });
        }
        Ok(len as usize)
    }

    pub(crate) fn finished(&self, context: &'static str) -> Result<(), CacheError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CacheError::Invalid(context))
        }
    }
}

fn decode_node(r: &mut Reader<'_>, context: &'static str) -> Result<Node, CacheError> {
    let kind =
        node_kind_from_code(r.u8(context)?).ok_or(CacheError::Invalid("unknown node kind"))?;
    let name = r.str16(context)?;
    Ok(Node {
        name: name.into(),
        kind,
    })
}

fn decode_diff(r: &mut Reader<'_>) -> Result<SnapshotDiff, CacheError> {
    const CTX: &str = "an event diff";
    let mut diff = SnapshotDiff::default();
    let added = r.u32(CTX)?;
    for _ in 0..added {
        diff.added_nodes.push(decode_node(r, CTX)?);
    }
    let removed = r.u32(CTX)?;
    for _ in 0..removed {
        diff.removed_nodes.push(decode_node(r, CTX)?);
    }
    let changes = r.u32(CTX)?;
    for _ in 0..changes {
        let a = r.str16(CTX)?.to_owned();
        let b = r.str16(CTX)?.to_owned();
        let before = usize::try_from(r.u64(CTX)?)
            .map_err(|_| CacheError::Invalid("group-change count overflow"))?;
        let after = usize::try_from(r.u64(CTX)?)
            .map_err(|_| CacheError::Invalid("group-change count overflow"))?;
        diff.group_changes.push(GroupDelta {
            a,
            b,
            before,
            after,
        });
    }
    Ok(diff)
}

/// The section table entry of one section, resolved to its payload.
fn section<'a>(
    bytes: &'a [u8],
    table: &[(u32, u64, u64, u32)],
    tag: u32,
) -> Result<&'a [u8], CacheError> {
    let mut found = None;
    for entry in table {
        if entry.0 == tag {
            if found.is_some() {
                return Err(CacheError::BadSectionTable("duplicate section"));
            }
            found = Some(entry);
        }
    }
    let &(_, offset, len, crc) = found.ok_or(CacheError::BadSectionTable("missing section"))?;
    let start = usize::try_from(offset).map_err(|_| CacheError::BadSectionTable("huge offset"))?;
    let len = usize::try_from(len).map_err(|_| CacheError::BadSectionTable("huge length"))?;
    let end = start
        .checked_add(len)
        .filter(|&end| end <= bytes.len())
        .ok_or(CacheError::Truncated {
            context: "a section payload",
        })?;
    let payload = &bytes[start..end];
    if crc32(payload) != crc {
        let tag_bytes = tag.to_le_bytes();
        return Err(CacheError::ChecksumMismatch {
            section: String::from_utf8_lossy(&tag_bytes).into_owned(),
        });
    }
    Ok(payload)
}

/// Deserialises a cache image back into the store, the fingerprint it
/// was built from and the original build's load counters.
///
/// Any structural problem — truncation, wrong magic or version, CRC
/// mismatch, dangling ids — returns a [`CacheError`]; this function
/// never panics on arbitrary input.
pub fn decode_store(
    bytes: &[u8],
) -> Result<(LongitudinalStore, CorpusFingerprint, CorpusLoadStats), CacheError> {
    // Header.
    let mut header = Reader::new(bytes);
    let magic = header.take(CACHE_MAGIC.len(), "the magic")?;
    if magic != CACHE_MAGIC {
        return Err(CacheError::BadMagic);
    }
    let version = header.u32("the format version")?;
    if version != CACHE_FORMAT_VERSION {
        return Err(CacheError::UnsupportedVersion(version));
    }
    let section_count = header.u32("the section count")?;
    if section_count as usize != SECTION_TAGS.len() {
        return Err(CacheError::BadSectionTable("wrong section count"));
    }
    let mut table = Vec::with_capacity(section_count as usize);
    for _ in 0..section_count {
        let tag = header.u32("the section table")?;
        let offset = header.u64("the section table")?;
        let len = header.u64("the section table")?;
        let crc = header.u32("the section table")?;
        table.push((tag, offset, len, crc));
    }

    // Fingerprint.
    let mut r = Reader::new(section(bytes, &table, TAG_FINGERPRINT)?);
    let n = r.checked_len("the fingerprint")?;
    let mut fingerprint = CorpusFingerprint {
        entries: Vec::with_capacity(n),
    };
    for _ in 0..n {
        fingerprint.entries.push(FingerprintEntry {
            path: r.str16("a fingerprint path")?.to_owned(),
            size: r.u64("a fingerprint size")?,
            hash: r.u64("a fingerprint hash")?,
        });
    }
    r.finished("trailing bytes after the fingerprint")?;

    // Stats.
    let mut r = Reader::new(section(bytes, &table, TAG_STATS)?);
    let overflow = |_| CacheError::Invalid("stats counter overflow");
    let stats = CorpusLoadStats {
        files: usize::try_from(r.u64("the load stats")?).map_err(overflow)?,
        parsed: usize::try_from(r.u64("the load stats")?).map_err(overflow)?,
        failed: usize::try_from(r.u64("the load stats")?).map_err(overflow)?,
        bytes: r.u64("the load stats")?,
        ..CorpusLoadStats::default()
    };
    r.finished("trailing bytes after the load stats")?;

    // Node table.
    let mut r = Reader::new(section(bytes, &table, TAG_NODES)?);
    let n = r.u32("the node table")? as usize;
    let mut nodes = Vec::with_capacity(n.min(r.buf.len()));
    for _ in 0..n {
        nodes.push(decode_node(&mut r, "the node table")?);
    }
    r.finished("trailing bytes after the node table")?;

    // Link-identity table.
    let mut r = Reader::new(section(bytes, &table, TAG_DEFS)?);
    let n = r.u32("the link table")? as usize;
    let mut defs = Vec::with_capacity(n.min(r.buf.len()));
    for _ in 0..n {
        let a = r.u32("a link endpoint")?;
        let b = r.u32("a link endpoint")?;
        if a as usize >= nodes.len() || b as usize >= nodes.len() {
            return Err(CacheError::Invalid("link endpoint id out of range"));
        }
        defs.push(LinkDef {
            a: NodeId::from_raw(a),
            b: NodeId::from_raw(b),
            label_a: r.opt_str16("a link label")?.map(str::to_owned),
            label_b: r.opt_str16("a link label")?.map(str::to_owned),
        });
    }
    r.finished("trailing bytes after the link table")?;

    // Snapshot axis: timestamps, maps, offset tables.
    let mut r = Reader::new(section(bytes, &table, TAG_SNAPSHOTS)?);
    let snaps = r.u32("the snapshot count")? as usize;
    let timestamp_bytes = r.take(
        snaps.checked_mul(8).ok_or(CacheError::Truncated {
            context: "the timestamps",
        })?,
        "the timestamps",
    )?;
    let timestamps: Vec<Timestamp> = timestamp_bytes
        .chunks_exact(8)
        .map(|c| Timestamp::from_unix(i64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
        .collect();
    if timestamps.windows(2).any(|w| w[0] > w[1]) {
        return Err(CacheError::Invalid("timestamps out of order"));
    }
    let map_bytes = r.take(snaps, "the map kinds")?;
    let maps = map_bytes
        .iter()
        .map(|&c| map_kind_from_code(c).ok_or(CacheError::Invalid("unknown map kind")))
        .collect::<Result<Vec<MapKind>, CacheError>>()?;
    let node_offsets = r.u32_run("the node offsets")?;
    let link_offsets = r.u32_run("the link offsets")?;
    r.finished("trailing bytes after the snapshot axis")?;

    // Cells: node ids, link rows, loads, orientation — bulk reads.
    let mut r = Reader::new(section(bytes, &table, TAG_CELLS)?);
    let node_cells = r.u32_run("the node cells")?;
    let link_cells = r.u32_run("the link cells")?;
    let rows = r.checked_len("the load columns")?;
    if rows != link_cells.len() {
        return Err(CacheError::Invalid("load column length mismatch"));
    }
    let load_a = r.take(rows, "the load column")?.to_vec();
    let load_b = r.take(rows, "the load column")?.to_vec();
    let flipped_bytes = r.take(rows, "the orientation column")?;
    r.finished("trailing bytes after the cells")?;
    if load_a
        .iter()
        .chain(&load_b)
        .any(|&p| Load::new(p).is_none())
    {
        return Err(CacheError::Invalid("load above 100 %"));
    }
    if flipped_bytes.iter().any(|&b| b > 1) {
        return Err(CacheError::Invalid("bad orientation bit"));
    }
    let flipped: Vec<bool> = flipped_bytes.iter().map(|&b| b != 0).collect();

    // Offset-table invariants: right length, start at 0, non-decreasing,
    // end at the matching cell count.
    let check_offsets = |offsets: &[u32], cells: usize| -> Result<(), CacheError> {
        if offsets.len() != snaps + 1
            || offsets.first() != Some(&0)
            || offsets.last().map(|&o| o as usize) != Some(cells)
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(CacheError::Invalid("bad offset table"));
        }
        Ok(())
    };
    check_offsets(&node_offsets, node_cells.len())?;
    check_offsets(&link_offsets, link_cells.len())?;
    if node_cells.iter().any(|&id| id as usize >= nodes.len()) {
        return Err(CacheError::Invalid("node cell id out of range"));
    }
    if link_cells.iter().any(|&id| id as usize >= defs.len()) {
        return Err(CacheError::Invalid("link cell id out of range"));
    }

    // Event log.
    let mut r = Reader::new(section(bytes, &table, TAG_EVENTS)?);
    let n = r.u32("the event log")? as usize;
    let mut events = Vec::with_capacity(n.min(r.buf.len()));
    for _ in 0..n {
        events.push(TopologyEvent {
            previous: Timestamp::from_unix(r.i64("an event timestamp")?),
            at: Timestamp::from_unix(r.i64("an event timestamp")?),
            diff: decode_diff(&mut r)?,
        });
    }
    r.finished("trailing bytes after the event log")?;

    let mut store = LongitudinalStore {
        nodes,
        defs,
        timestamps,
        maps,
        node_offsets,
        node_cells,
        link_offsets,
        link_cells,
        load_a,
        load_b,
        flipped,
        series_offsets: Vec::new(),
        series_rows: Vec::new(),
        events,
    };
    // The inverted series index is derived, not stored: rebuild it.
    store.rebuild_series_index();
    Ok((store, fingerprint, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_model::{Duration, Link, LinkEnd, TopologySnapshot};

    fn load(p: u8) -> Load {
        Load::new(p).unwrap()
    }

    fn link(a: &str, la: u8, b: &str, lb: u8, label: Option<&str>) -> Link {
        Link::new(
            LinkEnd::new(Node::from_name(a), label.map(str::to_owned), load(la)),
            LinkEnd::new(Node::from_name(b), label.map(str::to_owned), load(lb)),
        )
    }

    fn sample_store() -> LongitudinalStore {
        let t0 = Timestamp::from_ymd(2021, 6, 1);
        let mut s0 = TopologySnapshot::new(MapKind::Europe, t0);
        s0.nodes = vec![
            Node::from_name("rbx-g1"),
            Node::from_name("fra-fr5"),
            Node::from_name("ARELION"),
        ];
        s0.links = vec![
            link("rbx-g1", 10, "fra-fr5", 20, Some("#1")),
            link("fra-fr5", 42, "ARELION", 9, None),
        ];
        let mut s1 = s0.clone();
        s1.timestamp = t0 + Duration::from_minutes(5);
        s1.nodes.push(Node::from_name("sbg-g2"));
        s1.links.push(link("sbg-g2", 7, "rbx-g1", 8, None));
        LongitudinalStore::from_snapshots([&s0, &s1])
    }

    fn sample_fingerprint() -> CorpusFingerprint {
        CorpusFingerprint {
            entries: vec![
                FingerprintEntry {
                    path: "europe/yaml/2021/06/01/0000.yaml".into(),
                    size: 120,
                    hash: 0xDEAD_BEEF,
                },
                FingerprintEntry {
                    path: "europe/yaml/2021/06/01/0005.yaml".into(),
                    size: 140,
                    hash: 0xFEED_FACE,
                },
            ],
        }
    }

    fn sample_stats() -> CorpusLoadStats {
        CorpusLoadStats {
            files: 3,
            parsed: 2,
            failed: 1,
            bytes: 260,
            ..CorpusLoadStats::default()
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let store = sample_store();
        let image = encode_store(&store, &sample_fingerprint(), &sample_stats());
        let (back, fingerprint, stats) = decode_store(&image).expect("decodes");
        assert_eq!(back, store);
        assert_eq!(fingerprint, sample_fingerprint());
        assert_eq!(stats, sample_stats());
        // Deterministic: re-encoding the decoded store is byte-identical.
        let image2 = encode_store(&back, &fingerprint, &stats);
        assert_eq!(image, image2);
    }

    #[test]
    fn empty_store_round_trips() {
        let store = LongitudinalStore::from_snapshots(std::iter::empty());
        let image = encode_store(&store, &CorpusFingerprint::default(), &sample_stats());
        let (back, fingerprint, _) = decode_store(&image).expect("decodes");
        assert_eq!(back, store);
        assert!(fingerprint.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut image = encode_store(&sample_store(), &sample_fingerprint(), &sample_stats());
        image[0] ^= 0xFF;
        assert_eq!(decode_store(&image), Err(CacheError::BadMagic));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut image = encode_store(&sample_store(), &sample_fingerprint(), &sample_stats());
        image[8] = 99;
        assert_eq!(
            decode_store(&image),
            Err(CacheError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn flipped_payload_bit_fails_its_crc() {
        let image = encode_store(&sample_store(), &sample_fingerprint(), &sample_stats());
        // Flip one bit in every payload byte position in turn — each must
        // be caught by a section CRC (the header/table region is walked
        // by the truncation test instead).
        let payload_start = image.len() - 64; // deep in the last sections
        for pos in payload_start..image.len() {
            let mut corrupt = image.clone();
            corrupt[pos] ^= 0x01;
            match decode_store(&corrupt) {
                Err(CacheError::ChecksumMismatch { .. }) => {}
                other => panic!("flip at {pos}: expected checksum mismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let image = encode_store(&sample_store(), &sample_fingerprint(), &sample_stats());
        for len in 0..image.len() {
            assert!(
                decode_store(&image[..len]).is_err(),
                "truncation to {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn strict_prefix_detection() {
        let full = sample_fingerprint();
        let prefix = CorpusFingerprint {
            entries: full.entries[..1].to_vec(),
        };
        assert_eq!(prefix.strict_prefix_of(&full), Some(1));
        assert_eq!(full.strict_prefix_of(&full), None, "equal is not strict");
        assert_eq!(full.strict_prefix_of(&prefix), None, "shrunk corpus");
        let mut diverged = full.clone();
        diverged.entries[0].hash ^= 1;
        assert_eq!(prefix.strict_prefix_of(&diverged), None);
        // Digest reacts to any entry change.
        assert_ne!(full.digest(), diverged.digest());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
