//! The time-sharded segment store: manifest, windowed loads, compaction.
//!
//! The monolithic cache of [`crate::codec`] re-persists one image per
//! append and decodes the whole history per query — fine for hours,
//! hopeless for the paper's two years. This module shards that image
//! into [`crate::segment`] files along the timestamp-sorted corpus:
//! every chunk of `SegmentPolicy::capacity` snapshot files becomes one
//! *sealed* segment, and the remainder (fewer than `capacity` files)
//! is the *active tail*. The partition is a pure function of the entry
//! list, so growing the corpus only ever rewrites the tail — and when
//! the tail fills up it simply becomes sealed under the same name,
//! which is the whole compaction story: merging is implicit in the
//! canonical partition, runs synchronously inside the load that
//! notices it, and converges on exactly the bytes a fresh build of the
//! same corpus would write (asserted by `tests/segment_equivalence.rs`).
//!
//! A manifest file maps `[t_min, t_max] → segment` so a windowed load
//! decodes only the segments its range intersects. Validation against
//! the corpus uses the [`crate::segment::identity_digest`] over
//! `(path, size)` pairs — no content reads — keeping append cost
//! independent of history length; the monolithic `index` path keeps
//! hashing contents, so a same-size in-place edit is still caught by
//! the full-fidelity pass (DESIGN.md decision 14 discusses the split).
//!
//! Damage recovery is per segment: a missing, truncated, bit-flipped,
//! wrong-magic or wrong-version segment file is rebuilt from exactly
//! its own YAML slice at decode time; a damaged manifest is recovered
//! from the segment headers without re-encoding anything.

use std::collections::BTreeMap;
use std::io;

use wm_extract::CacheStats;
use wm_model::{MapKind, TimeRange, Timestamp, TopologySnapshot};

use crate::codec::{self, CacheError, CorpusFingerprint, FingerprintEntry};
use crate::loader::{self, CacheMode, CorpusLoadStats};
use crate::longitudinal::{ColumnarBuilder, LongitudinalStore};
use crate::paths::FileKind;
use crate::segment::{self, SegmentHeader};
use crate::store::{DatasetEntry, DatasetStore};

/// First bytes of every segment manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"OVHWMMF\n";

/// Bumped on any incompatible change to the manifest layout.
pub const MANIFEST_FORMAT_VERSION: u32 = 1;

/// Sizing policy of the segment store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPolicy {
    /// Snapshot files per sealed segment. The default, 288, is one day
    /// at the weathermaps' 5-minute cadence; values below 1 behave as 1.
    pub capacity: usize,
}

impl Default for SegmentPolicy {
    fn default() -> SegmentPolicy {
        SegmentPolicy { capacity: 288 }
    }
}

impl SegmentPolicy {
    fn chunk(self) -> usize {
        self.capacity.max(1)
    }
}

/// One manifest row: a segment file and the slice of history it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name under the map's `.segments/` directory.
    pub name: String,
    /// Timestamp of the oldest covered snapshot file (closed span).
    pub t_min: Timestamp,
    /// Timestamp of the newest covered snapshot file (closed span).
    pub t_max: Timestamp,
    /// Number of corpus files covered.
    pub entries: u64,
    /// Number of those files that parsed into snapshots.
    pub snapshots: u64,
    /// [`segment::identity_digest`] over the covered `(path, size)`s.
    pub meta_digest: u64,
}

/// The manifest: every segment of one map, oldest first, spans disjoint.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentManifest {
    /// Per-segment rows sorted by `t_min`; closed spans never overlap.
    pub segments: Vec<SegmentMeta>,
}

/// Canonical file name of the segment starting at `t_min`.
#[must_use]
pub fn segment_name(t_min: Timestamp) -> String {
    format!("seg-{:016x}.seg", t_min.unix() as u64)
}

/// Encodes a manifest (magic, version, CRC-protected body).
#[must_use]
pub fn encode_manifest(manifest: &SegmentManifest) -> Vec<u8> {
    let mut body = codec::Writer { buf: Vec::new() };
    body.u64(manifest.segments.len() as u64);
    for seg in &manifest.segments {
        body.str16(&seg.name);
        body.i64(seg.t_min.unix());
        body.i64(seg.t_max.unix());
        body.u64(seg.entries);
        body.u64(seg.snapshots);
        body.u64(seg.meta_digest);
    }
    let mut w = codec::Writer { buf: Vec::new() };
    w.bytes(&MANIFEST_MAGIC);
    w.u32(MANIFEST_FORMAT_VERSION);
    w.u32(codec::crc32(&body.buf));
    w.bytes(&body.buf);
    w.buf
}

/// Decodes and validates a manifest: spans ordered, disjoint, sane.
pub fn decode_manifest(bytes: &[u8]) -> Result<SegmentManifest, CacheError> {
    let mut r = codec::Reader::new(bytes);
    if r.take(8, "manifest magic")? != &MANIFEST_MAGIC[..] {
        return Err(CacheError::BadMagic);
    }
    let version = r.u32("manifest version")?;
    if version != MANIFEST_FORMAT_VERSION {
        return Err(CacheError::UnsupportedVersion(version));
    }
    let crc = r.u32("manifest crc")?;
    let body = r.take(bytes.len().saturating_sub(16), "manifest body")?;
    if codec::crc32(body) != crc {
        return Err(CacheError::ChecksumMismatch {
            section: "manifest".to_owned(),
        });
    }
    let mut b = codec::Reader::new(body);
    let count = b.checked_len("manifest segment count")?;
    let mut segments = Vec::with_capacity(count);
    for _ in 0..count {
        let name = b.str16("manifest segment name")?.to_owned();
        let t_min = Timestamp::from_unix(b.i64("manifest t_min")?);
        let t_max = Timestamp::from_unix(b.i64("manifest t_max")?);
        let entries = b.u64("manifest entry count")?;
        let snapshots = b.u64("manifest snapshot count")?;
        let meta_digest = b.u64("manifest digest")?;
        if name.is_empty() || entries == 0 {
            return Err(CacheError::Invalid("manifest row is degenerate"));
        }
        if t_max < t_min {
            return Err(CacheError::Invalid("manifest time span is inverted"));
        }
        if let Some(prev) = segments.last() {
            let prev: &SegmentMeta = prev;
            if t_min <= prev.t_max {
                return Err(CacheError::Invalid("manifest time ranges overlap"));
            }
        }
        segments.push(SegmentMeta {
            name,
            t_min,
            t_max,
            entries,
            snapshots,
            meta_digest,
        });
    }
    b.finished("manifest")?;
    Ok(SegmentManifest { segments })
}

/// Writes a manifest through the store's atomic path.
pub fn write_manifest(
    store: &DatasetStore,
    map: MapKind,
    manifest: &SegmentManifest,
) -> io::Result<()> {
    store.write_manifest_bytes(map, &encode_manifest(manifest))
}

/// Loads one map's history restricted to `range`, touching only the
/// segments the range intersects, with the default [`SegmentPolicy`].
///
/// The result is exactly what a fresh YAML build restricted to the
/// window produces — same store, same load counters — at any thread
/// count. `CacheMode::Off` bypasses the segment store entirely,
/// `Rebuild` re-derives every segment from YAML first.
pub fn build_longitudinal_windowed(
    store: &DatasetStore,
    map: MapKind,
    range: TimeRange,
    threads: usize,
    mode: CacheMode,
) -> io::Result<(LongitudinalStore, CorpusLoadStats)> {
    build_longitudinal_windowed_with(store, map, range, threads, mode, SegmentPolicy::default())
}

/// [`build_longitudinal_windowed`] with an explicit sizing policy.
pub fn build_longitudinal_windowed_with(
    store: &DatasetStore,
    map: MapKind,
    range: TimeRange,
    threads: usize,
    mode: CacheMode,
    policy: SegmentPolicy,
) -> io::Result<(LongitudinalStore, CorpusLoadStats)> {
    // An empty window holds nothing by definition: no disk is touched.
    if range.is_empty() {
        return Ok((empty_store(), CorpusLoadStats::default()));
    }

    if mode == CacheMode::Off {
        let filtered: Vec<DatasetEntry> = store
            .entries_of(map, FileKind::Yaml)?
            .into_iter()
            .filter(|e| range.contains(e.timestamp))
            .collect();
        let (builders, stats, _) =
            loader::load_fold_entries::<ColumnarBuilder>(store, map, &filtered, threads, false)?;
        return Ok((ColumnarBuilder::finish(builders), stats));
    }

    let mut cache = CacheStats::default();

    // Gap fast path: when an intact manifest proves the window falls
    // inside indexed history yet intersects no segment, the answer is
    // empty and only the manifest was read.
    if mode == CacheMode::Auto {
        if let Some(bytes) = store.read_manifest_bytes(map)? {
            if let Ok(manifest) = decode_manifest(&bytes) {
                if let Some(last) = manifest.segments.last() {
                    let touched = manifest
                        .segments
                        .iter()
                        .any(|m| range.intersects_closed(m.t_min, m.t_max));
                    if !touched && range.end <= last.t_max {
                        cache.hits += 1;
                        let stats = CorpusLoadStats {
                            cache,
                            ..CorpusLoadStats::default()
                        };
                        return Ok((empty_store(), stats));
                    }
                }
            }
        }
    }

    let entries = store.entries_of(map, FileKind::Yaml)?;
    let (manifest, spans) = ensure_segments(
        store,
        map,
        &entries,
        threads,
        policy,
        mode == CacheMode::Rebuild,
        &mut cache,
    )?;

    let mut builder = ColumnarBuilder::default();
    let mut index = 0usize;
    for (meta, span) in manifest.segments.iter().zip(&spans) {
        if !range.intersects_closed(meta.t_min, meta.t_max) {
            continue;
        }
        cache.segments_touched += 1;
        let chunk = entries.get(span.0..span.1).unwrap_or(&[]);
        let (snapshots, from_cache) =
            load_segment_snapshots(store, map, meta, chunk, threads, &mut cache)?;
        for snapshot in &snapshots {
            if range.contains(snapshot.timestamp) {
                builder.add_snapshot(index, snapshot);
                index += 1;
                if from_cache {
                    cache.snapshots_from_cache += 1;
                }
            }
        }
    }
    let merged = ColumnarBuilder::finish(vec![builder]);

    // Load counters derive from the windowed slice of the entry list,
    // exactly what the cache-less restricted build reports.
    let in_range = entries.iter().filter(|e| range.contains(e.timestamp));
    let mut stats = CorpusLoadStats::default();
    for entry in in_range {
        stats.files += 1;
        stats.bytes += entry.size;
    }
    stats.parsed = merged.len();
    stats.failed = stats.files - stats.parsed;
    stats.cache = cache;
    Ok((merged, stats))
}

/// Brings one map's segment store in line with the corpus and validates
/// every segment file, repairing damaged ones — the `index --compact`
/// entry point. Returns the manifest and full-corpus load counters.
pub fn reindex_segments(
    store: &DatasetStore,
    map: MapKind,
    threads: usize,
    mode: CacheMode,
) -> io::Result<(SegmentManifest, CorpusLoadStats)> {
    reindex_segments_with(store, map, threads, mode, SegmentPolicy::default())
}

/// [`reindex_segments`] with an explicit sizing policy.
pub fn reindex_segments_with(
    store: &DatasetStore,
    map: MapKind,
    threads: usize,
    mode: CacheMode,
    policy: SegmentPolicy,
) -> io::Result<(SegmentManifest, CorpusLoadStats)> {
    let entries = store.entries_of(map, FileKind::Yaml)?;
    let mut cache = CacheStats::default();
    let (manifest, spans) = ensure_segments(
        store,
        map,
        &entries,
        threads,
        policy,
        mode == CacheMode::Rebuild,
        &mut cache,
    )?;
    let mut parsed = 0usize;
    for (meta, span) in manifest.segments.iter().zip(&spans) {
        cache.segments_touched += 1;
        let chunk = entries.get(span.0..span.1).unwrap_or(&[]);
        let (snapshots, from_cache) =
            load_segment_snapshots(store, map, meta, chunk, threads, &mut cache)?;
        parsed += snapshots.len();
        if from_cache {
            cache.snapshots_from_cache += snapshots.len() as u64;
        }
    }
    let mut stats = CorpusLoadStats::default();
    for entry in &entries {
        stats.files += 1;
        stats.bytes += entry.size;
    }
    stats.parsed = parsed;
    stats.failed = stats.files - stats.parsed;
    stats.cache = cache;
    Ok((manifest, stats))
}

/// An empty store through the same builder path every load uses.
fn empty_store() -> LongitudinalStore {
    ColumnarBuilder::finish(vec![ColumnarBuilder::default()])
}

/// The manifest row the current corpus dictates for one entry chunk.
///
/// `snapshots` is unknown without parsing and stays 0; matching against
/// an existing manifest ignores it.
fn meta_of_chunk(map: MapKind, chunk: &[DatasetEntry]) -> Option<SegmentMeta> {
    let first = chunk.first()?;
    let last = chunk.last()?;
    Some(SegmentMeta {
        name: segment_name(first.timestamp),
        t_min: first.timestamp,
        t_max: last.timestamp,
        entries: chunk.len() as u64,
        snapshots: 0,
        meta_digest: chunk_identity(map, chunk),
    })
}

/// [`segment::identity_digest`] of one entry chunk.
fn chunk_identity(map: MapKind, chunk: &[DatasetEntry]) -> u64 {
    let paths: Vec<(String, u64)> = chunk
        .iter()
        .map(|e| (loader::relative_path_string(map, e.timestamp), e.size))
        .collect();
    segment::identity_digest(paths.iter().map(|(p, s)| (p.as_str(), *s)))
}

/// Whether a manifest row still matches the chunk the corpus dictates.
fn meta_matches(old: &SegmentMeta, expected: &SegmentMeta) -> bool {
    old.name == expected.name
        && old.t_min == expected.t_min
        && old.t_max == expected.t_max
        && old.entries == expected.entries
        && old.meta_digest == expected.meta_digest
}

/// Reconstructs a manifest from segment file headers — the recovery
/// path for a damaged manifest, which must not force any segment
/// rebuild when the segment files themselves are intact.
fn recover_manifest(store: &DatasetStore, map: MapKind) -> io::Result<SegmentManifest> {
    let mut metas: Vec<SegmentMeta> = Vec::new();
    for name in store.list_segment_files(map)? {
        let Some(bytes) = store.read_segment_file(map, &name)? else {
            continue;
        };
        let Ok(header) = segment::decode_segment_header(&bytes) else {
            continue;
        };
        if segment_name(header.t_min) != name {
            continue;
        }
        metas.push(SegmentMeta {
            name,
            t_min: header.t_min,
            t_max: header.t_max,
            entries: header.entries,
            snapshots: header.snapshots,
            meta_digest: header.meta_digest,
        });
    }
    metas.sort_by_key(|m| m.t_min);
    // Drop rows whose spans overlap a predecessor (stale leftovers).
    let mut segments: Vec<SegmentMeta> = Vec::new();
    for meta in metas {
        if segments.last().is_none_or(|prev| prev.t_max < meta.t_min) {
            segments.push(meta);
        }
    }
    Ok(SegmentManifest { segments })
}

/// What one rebuilt entry resolves to: a content hash plus the parsed
/// snapshot when the file parses (reused from an old segment or parsed
/// fresh from YAML).
type Resolved = (u64, Option<TopologySnapshot>);

/// Brings the partition in line with the corpus: keeps every sealed
/// segment the entry list still dictates, rebuilds the changed suffix
/// (reusing decoded old segments where `(path, size)` still matches so
/// a pure append never re-parses history), rewrites the manifest and
/// garbage-collects stray files. Returns the manifest and the entry
/// span of each segment.
#[allow(clippy::too_many_arguments)]
fn ensure_segments(
    store: &DatasetStore,
    map: MapKind,
    entries: &[DatasetEntry],
    threads: usize,
    policy: SegmentPolicy,
    rebuild_all: bool,
    cache: &mut CacheStats,
) -> io::Result<(SegmentManifest, Vec<(usize, usize)>)> {
    let capacity = policy.chunk();

    // The old manifest, if usable; `intact` means the file itself was
    // present and decoded (a recovered manifest must be rewritten even
    // when nothing else changed).
    let mut intact = false;
    let old = if rebuild_all {
        SegmentManifest::default()
    } else {
        match store.read_manifest_bytes(map)? {
            None => SegmentManifest::default(),
            Some(bytes) => match decode_manifest(&bytes) {
                Ok(manifest) => {
                    intact = true;
                    manifest
                }
                Err(err) => {
                    eprintln!(
                        "warning: discarding segment manifest for {}: {err}; recovering from segment headers",
                        map.slug()
                    );
                    if matches!(err, CacheError::UnsupportedVersion(_)) {
                        cache.stale += 1;
                    } else {
                        cache.corrupt += 1;
                    }
                    recover_manifest(store, map)?
                }
            },
        }
    };

    // Longest prefix of chunks the old manifest still matches.
    let mut kept = 0usize;
    for (chunk, old_meta) in entries.chunks(capacity).zip(&old.segments) {
        match meta_of_chunk(map, chunk) {
            Some(expected) if meta_matches(old_meta, &expected) => kept += 1,
            _ => break,
        }
    }
    let chunk_count = entries.len().div_ceil(capacity);

    let structurally_clean = kept == chunk_count && old.segments.len() == chunk_count;
    let mut manifest = SegmentManifest {
        segments: old.segments.iter().take(kept).cloned().collect(),
    };

    let mut reused_any = false;
    if !structurally_clean {
        // Decode-reuse pool: old segments past the kept prefix whose
        // span still overlaps the rebuild region. For a pure append
        // that is exactly the old undersized tail.
        let rebuild_from = kept * capacity;
        let first_rebuilt = entries.get(rebuild_from).map(|e| e.timestamp);
        let mut pool: BTreeMap<String, (u64, Resolved)> = BTreeMap::new();
        if !rebuild_all {
            for meta in old.segments.iter().skip(kept) {
                if first_rebuilt.is_none_or(|t| meta.t_max < t) {
                    continue;
                }
                let Some(bytes) = store.read_segment_file(map, &meta.name)? else {
                    continue;
                };
                let Ok((_, seg_store, fingerprint, _)) = segment::decode_segment(&bytes) else {
                    continue;
                };
                let mut by_path: BTreeMap<String, TopologySnapshot> = seg_store
                    .snapshots()
                    .map(|s| (loader::relative_path_string(map, s.timestamp), s))
                    .collect();
                for entry in &fingerprint.entries {
                    let snapshot = by_path.remove(&entry.path);
                    pool.insert(entry.path.clone(), (entry.size, (entry.hash, snapshot)));
                }
            }
        }

        // Parse from YAML only what the pool cannot supply.
        let rebuild = entries.get(rebuild_from..).unwrap_or(&[]);
        let fresh: Vec<DatasetEntry> = rebuild
            .iter()
            .filter(|e| {
                let path = loader::relative_path_string(map, e.timestamp);
                pool.get(&path).is_none_or(|(size, _)| *size != e.size)
            })
            .cloned()
            .collect();
        let (snapshots, fresh_stats, hashes) =
            loader::load_sorted(store, map, &fresh, threads, true)?;
        cache.snapshots_appended += fresh_stats.parsed as u64;
        let mut fresh_snaps: BTreeMap<i64, TopologySnapshot> = snapshots
            .into_iter()
            .map(|s| (s.timestamp.unix(), s))
            .collect();
        let fresh_hashes: BTreeMap<i64, u64> = fresh
            .iter()
            .zip(&hashes)
            .map(|(e, &h)| (e.timestamp.unix(), h))
            .collect();

        let old_coverage = old.segments.last().map(|m| m.t_max);
        for chunk in entries.chunks(capacity).skip(kept) {
            let Some(mut meta) = meta_of_chunk(map, chunk) else {
                continue;
            };
            let mut chunk_snapshots: Vec<TopologySnapshot> = Vec::new();
            let mut fp = CorpusFingerprint::default();
            for entry in chunk {
                let path = loader::relative_path_string(map, entry.timestamp);
                let (hash, snapshot) = match pool.get(&path) {
                    Some((size, (hash, snapshot))) if *size == entry.size => {
                        reused_any = true;
                        (*hash, snapshot.clone())
                    }
                    _ => (
                        fresh_hashes
                            .get(&entry.timestamp.unix())
                            .copied()
                            .unwrap_or(0),
                        fresh_snaps.remove(&entry.timestamp.unix()),
                    ),
                };
                fp.entries.push(FingerprintEntry {
                    path,
                    size: entry.size,
                    hash,
                });
                if let Some(snapshot) = snapshot {
                    chunk_snapshots.push(snapshot);
                }
            }
            meta.snapshots = chunk_snapshots.len() as u64;
            let bytes = encode_chunk(&meta, chunk, &chunk_snapshots, &fp);
            store.write_segment_file(map, &meta.name, &bytes)?;
            if old_coverage.is_some_and(|end| meta.t_min <= end) {
                cache.segments_rebuilt += 1;
            }
            manifest.segments.push(meta);
        }
    }

    if structurally_clean && !rebuild_all {
        cache.hits += 1;
    } else if !rebuild_all && (kept > 0 || reused_any) {
        cache.appends += 1;
    } else {
        cache.misses += 1;
    }

    if !(structurally_clean && intact) {
        write_manifest(store, map, &manifest)?;
        // Stray files (an old tail under a superseded name, leftovers
        // of a shrunk corpus) would confuse manifest recovery: drop
        // everything the manifest no longer references.
        for name in store.list_segment_files(map)? {
            if !manifest.segments.iter().any(|m| m.name == name) {
                store.remove_segment_file(map, &name)?;
            }
        }
    }

    let mut spans = Vec::with_capacity(manifest.segments.len());
    let mut start = 0usize;
    for meta in &manifest.segments {
        let end = start + meta.entries as usize;
        spans.push((start, end));
        start = end;
    }
    Ok((manifest, spans))
}

/// Materialises one segment's snapshots: decodes the file when it is
/// intact and still the segment the manifest promised, otherwise
/// rebuilds exactly this chunk from YAML (counting the damage) and
/// repairs the file in place. Returns the snapshots and whether they
/// came from the segment file.
fn load_segment_snapshots(
    store: &DatasetStore,
    map: MapKind,
    meta: &SegmentMeta,
    chunk: &[DatasetEntry],
    threads: usize,
    cache: &mut CacheStats,
) -> io::Result<(Vec<TopologySnapshot>, bool)> {
    let decoded = match store.read_segment_file(map, &meta.name)? {
        None => {
            eprintln!(
                "warning: segment {} of {} is missing; rebuilding it from YAML",
                meta.name,
                map.slug()
            );
            cache.corrupt += 1;
            None
        }
        Some(bytes) => match segment::decode_segment(&bytes) {
            Ok((header, seg_store, _, _)) if header_matches(&header, meta) => Some(seg_store),
            Ok(_) => {
                eprintln!(
                    "warning: segment {} of {} does not match its manifest row; rebuilding it from YAML",
                    meta.name,
                    map.slug()
                );
                cache.corrupt += 1;
                None
            }
            Err(err) => {
                eprintln!(
                    "warning: discarding segment {} of {}: {err}; rebuilding it from YAML",
                    meta.name,
                    map.slug()
                );
                if matches!(err, CacheError::UnsupportedVersion(_)) {
                    cache.stale += 1;
                } else {
                    cache.corrupt += 1;
                }
                None
            }
        },
    };
    if let Some(seg_store) = decoded {
        return Ok((seg_store.snapshots().collect(), true));
    }

    // Repair: parse exactly this chunk, re-encode, write back. The
    // encoding is deterministic, so the repaired file is byte-identical
    // to the one originally written and the manifest needs no update.
    let (snapshots, chunk_stats, hashes) = loader::load_sorted(store, map, chunk, threads, true)?;
    cache.segments_rebuilt += 1;
    cache.snapshots_appended += chunk_stats.parsed as u64;
    let meta = SegmentMeta {
        snapshots: snapshots.len() as u64,
        ..meta.clone()
    };
    let fp = loader::fingerprint_from(map, chunk, &hashes);
    let bytes = encode_chunk(&meta, chunk, &snapshots, &fp);
    store.write_segment_file(map, &meta.name, &bytes)?;
    Ok((snapshots, false))
}

/// Whether a decoded header is the segment the manifest row promises.
fn header_matches(header: &SegmentHeader, meta: &SegmentMeta) -> bool {
    header.t_min == meta.t_min
        && header.t_max == meta.t_max
        && header.entries == meta.entries
        && header.meta_digest == meta.meta_digest
}

/// Encodes one chunk as a segment file. Load counters are derived from
/// the entry list (not from what this call happened to read), so both
/// the build and the repair path emit byte-identical files.
fn encode_chunk(
    meta: &SegmentMeta,
    chunk: &[DatasetEntry],
    snapshots: &[TopologySnapshot],
    fingerprint: &CorpusFingerprint,
) -> Vec<u8> {
    let mut builder = ColumnarBuilder::default();
    for (i, snapshot) in snapshots.iter().enumerate() {
        builder.add_snapshot(i, snapshot);
    }
    let seg_store = ColumnarBuilder::finish(vec![builder]);
    let mut stats = CorpusLoadStats {
        parsed: snapshots.len(),
        failed: chunk.len() - snapshots.len(),
        ..CorpusLoadStats::default()
    };
    for entry in chunk {
        stats.files += 1;
        stats.bytes += entry.size;
    }
    let header = SegmentHeader {
        t_min: meta.t_min,
        t_max: meta.t_max,
        entries: meta.entries,
        snapshots: meta.snapshots,
        meta_digest: meta.meta_digest,
    };
    segment::encode_segment(&header, &seg_store, fingerprint, &stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_model::Duration;

    #[test]
    fn manifest_round_trip_and_validation() {
        let t0 = Timestamp::from_ymd(2022, 2, 1);
        let meta = |offset: i64, len: i64| SegmentMeta {
            name: segment_name(t0 + Duration::from_minutes(offset)),
            t_min: t0 + Duration::from_minutes(offset),
            t_max: t0 + Duration::from_minutes(offset + len),
            entries: 4,
            snapshots: 3,
            meta_digest: 0xFEED + offset as u64,
        };
        let manifest = SegmentManifest {
            segments: vec![meta(0, 15), meta(20, 15), meta(40, 5)],
        };
        let bytes = encode_manifest(&manifest);
        assert_eq!(decode_manifest(&bytes).unwrap(), manifest);
        // Deterministic re-encode.
        assert_eq!(encode_manifest(&decode_manifest(&bytes).unwrap()), bytes);

        let empty = SegmentManifest::default();
        assert_eq!(decode_manifest(&encode_manifest(&empty)).unwrap(), empty);

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_manifest(&bad_magic),
            Err(CacheError::BadMagic)
        ));

        let mut bad_version = bytes.clone();
        bad_version[8] = 9;
        assert!(matches!(
            decode_manifest(&bad_version),
            Err(CacheError::UnsupportedVersion(9))
        ));

        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(decode_manifest(&flipped).is_err());
        for cut in [0, 7, 12, 16, bytes.len() - 1] {
            assert!(decode_manifest(&bytes[..cut]).is_err(), "cut {cut}");
        }

        // Overlapping spans are rejected even under a valid CRC.
        let overlapping = SegmentManifest {
            segments: vec![meta(0, 30), meta(20, 15)],
        };
        assert!(matches!(
            decode_manifest(&encode_manifest(&overlapping)),
            Err(CacheError::Invalid(_))
        ));
    }

    #[test]
    fn segment_names_sort_with_time() {
        let t0 = Timestamp::from_ymd(2022, 2, 1);
        let names: Vec<String> = (0..30)
            .map(|d| segment_name(t0 + Duration::from_days(d)))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(names.first().unwrap().starts_with("seg-"));
        assert!(names.first().unwrap().ends_with(".seg"));
    }
}
